package solvers

import (
	"math"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
)

// PCGJacobi solves SPD A x = b with conjugate gradient preconditioned
// by the inverse diagonal (scipy's cg with a diagonal LinearOperator M),
// the lightest preconditioner Legate Sparse programs reach for before
// multigrid.
func PCGJacobi(a core.SparseMatrix, b *cunumeric.Array, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	n := b.Len()
	dinv := core.Diagonal(a)
	one := cunumeric.Full(rt, n, 1)
	cunumeric.DivInto(dinv, one, dinv)
	one.Destroy()

	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	cunumeric.Copy(r, b)
	z := cunumeric.Zeros(rt, n)
	cunumeric.MulInto(z, r, dinv)
	p := cunumeric.Zeros(rt, n)
	cunumeric.Copy(p, z)
	ap := cunumeric.Zeros(rt, n)

	res := &Result{X: x}
	rz := cunumeric.Dot(r, z).Get()
	for it := 0; it < maxIter && !stopped(rt); it++ {
		a.SpMVInto(ap, p)
		den := cunumeric.Dot(p, ap).Get()
		if den == 0 {
			res.breakdown("pcg", "p·Ap = 0")
			break
		}
		alpha := rz / den
		cunumeric.AXPY(alpha, p, x)
		cunumeric.AXPY(-alpha, ap, r)
		nrm := math.Sqrt(cunumeric.Dot(r, r).Get())
		res.Iterations = it + 1
		res.Residuals = append(res.Residuals, nrm)
		if !res.residualOK("pcg", nrm) {
			break
		}
		if nrm < tol {
			res.Converged = true
			break
		}
		cunumeric.MulInto(z, r, dinv)
		rzNew := cunumeric.Dot(r, z).Get()
		cunumeric.AXPBY(1, z, rzNew/rz, p)
		rz = rzNew
	}
	dinv.Destroy()
	r.Destroy()
	z.Destroy()
	p.Destroy()
	ap.Destroy()
	return res.finish(rt)
}

// RKF45 integrates y' = f(t, y) from t0 to t1 with the adaptive
// Runge-Kutta-Fehlberg 4(5) method — the fixed-tolerance analog of
// scipy.integrate.solve_ivp(method='RK45') that completes the ported
// integration surface alongside the fixed-step RK4 and RK8 methods.
// It returns the final time reached and the number of accepted steps.
func RKF45(rt *legion.Runtime, f RHS, t0, t1 float64, y []*cunumeric.Array, rtol float64, h0 float64) (float64, int) {
	n := y[0].Len()
	nc := len(y)
	// Fehlberg tableau.
	a := [][]float64{
		{},
		{1.0 / 4},
		{3.0 / 32, 9.0 / 32},
		{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197},
		{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104},
		{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40},
	}
	c := []float64{0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1, 1.0 / 2}
	b5 := []float64{16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50, 2.0 / 55}
	b4 := []float64{25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -1.0 / 5, 0}

	k := make([][]*cunumeric.Array, 6)
	for i := range k {
		k[i] = make([]*cunumeric.Array, nc)
		for q := range k[i] {
			k[i][q] = cunumeric.Zeros(rt, n)
		}
	}
	tmp := make([]*cunumeric.Array, nc)
	cand := make([]*cunumeric.Array, nc)
	for q := 0; q < nc; q++ {
		tmp[q] = cunumeric.Zeros(rt, n)
		cand[q] = cunumeric.Zeros(rt, n)
	}
	defer func() {
		for i := range k {
			for _, arr := range k[i] {
				arr.Destroy()
			}
		}
		for q := 0; q < nc; q++ {
			tmp[q].Destroy()
			cand[q].Destroy()
		}
	}()

	t := t0
	h := h0
	steps := 0
	for t < t1 && steps < 100000 {
		if t+h > t1 {
			h = t1 - t
		}
		for i := 0; i < 6; i++ {
			for q := 0; q < nc; q++ {
				cunumeric.Copy(tmp[q], y[q])
				for j, aij := range a[i] {
					if aij != 0 {
						cunumeric.AXPY(h*aij, k[j][q], tmp[q])
					}
				}
			}
			f(t+c[i]*h, tmp, k[i])
		}
		// 5th-order candidate and 4th/5th error estimate.
		var errNorm, solNorm float64
		for q := 0; q < nc; q++ {
			cunumeric.Copy(cand[q], y[q])
			cunumeric.Copy(tmp[q], y[q])
			for i := 0; i < 6; i++ {
				if b5[i] != 0 {
					cunumeric.AXPY(h*b5[i], k[i][q], cand[q])
				}
				if b4[i] != 0 {
					cunumeric.AXPY(h*b4[i], k[i][q], tmp[q])
				}
			}
			diff := cunumeric.Sub(cand[q], tmp[q])
			errNorm += cunumeric.Dot(diff, diff).Get()
			solNorm += cunumeric.Dot(cand[q], cand[q]).Get()
			diff.Destroy()
		}
		errNorm = math.Sqrt(errNorm)
		scale := rtol * (1 + math.Sqrt(solNorm))
		if errNorm <= scale || h <= 1e-12 {
			// Accept.
			for q := 0; q < nc; q++ {
				cunumeric.Copy(y[q], cand[q])
			}
			t += h
			steps++
		}
		// Standard step-size controller.
		if errNorm > 0 {
			factor := 0.9 * math.Pow(scale/errNorm, 0.2)
			if factor < 0.2 {
				factor = 0.2
			}
			if factor > 5 {
				factor = 5
			}
			h *= factor
		} else {
			h *= 2
		}
	}
	return t, steps
}
