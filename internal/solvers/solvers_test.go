package solvers

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/seq"
)

func newRT(t testing.TB, gpus int) *legion.Runtime {
	t.Helper()
	m := machine.Summit((gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, gpus))
	t.Cleanup(rt.Shutdown)
	return rt
}

func onesB(rt *legion.Runtime, n int64) *cunumeric.Array {
	return cunumeric.Full(rt, n, 1)
}

// residualNorm computes ||b - A x|| on the host.
func residualNorm(a *core.CSR, x, b *cunumeric.Array) float64 {
	ax := a.SpMV(x)
	cunumeric.AXPBY(1, b, -1, ax)
	n := cunumeric.Norm(ax)
	ax.Destroy()
	return n
}

func TestCGSolvesPoisson(t *testing.T) {
	rt := newRT(t, 4)
	nx := int64(16)
	a := core.Poisson2D(rt, nx)
	b := onesB(rt, nx*nx)
	res := CG(a, b, 500, 1e-8)
	if !res.Converged {
		t.Fatalf("CG did not converge in %d iterations (last residual %v)",
			res.Iterations, res.Residuals[len(res.Residuals)-1])
	}
	if rn := residualNorm(a, res.X, b); rn > 1e-7 {
		t.Fatalf("true residual %v", rn)
	}
}

// TestCGMatchesSequentialOracle: distributed CG reproduces the
// sequential reference solver iteration for iteration.
func TestCGMatchesSequentialOracle(t *testing.T) {
	rt := newRT(t, 3)
	nx := int64(10)
	a := core.Poisson2D(rt, nx)
	n := nx * nx
	b := onesB(rt, n)
	res := CG(a, b, 40, 0) // run exactly 40 iterations

	// Build the same matrix sequentially.
	rt.Fence()
	indptr := make([]int64, n+1)
	for i := int64(0); i < n; i++ {
		indptr[i+1] = a.Pos().Rects()[i].Hi + 1
	}
	ref := seq.NewCSR(n, n, indptr, a.Crd().Int64s(), a.Vals().Float64s())
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = 1
	}
	_, hist := ref.CG(bs, 40, 0)
	if len(hist) != len(res.Residuals) {
		t.Fatalf("iteration counts differ: %d vs %d", len(res.Residuals), len(hist))
	}
	for i := range hist {
		if math.Abs(hist[i]-res.Residuals[i]) > 1e-8*(1+hist[i]) {
			t.Fatalf("residual %d differs: %v vs %v", i, res.Residuals[i], hist[i])
		}
	}
}

// TestCGResidualDecreases: on an SPD system the energy-norm error is
// monotone; the residual should trend strongly downward.
func TestCGResidualDecreases(t *testing.T) {
	rt := newRT(t, 2)
	a := core.Poisson2D(rt, 12)
	b := onesB(rt, 144)
	res := CG(a, b, 100, 1e-10)
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if last >= first/1e4 {
		t.Fatalf("residual barely decreased: %v -> %v", first, last)
	}
}

func TestKrylovVariantsSolveSPD(t *testing.T) {
	rt := newRT(t, 3)
	a := core.Poisson2D(rt, 8)
	b := onesB(rt, 64)
	type solver struct {
		name string
		run  func() *Result
	}
	for _, s := range []solver{
		{"CGS", func() *Result { return CGS(a, b, 300, 1e-8) }},
		{"BiCG", func() *Result { return BiCG(a, b, 300, 1e-8) }},
		{"BiCGSTAB", func() *Result { return BiCGSTAB(a, b, 300, 1e-8) }},
		{"GMRES", func() *Result { return GMRES(a, b, 20, 300, 1e-8) }},
	} {
		res := s.run()
		if rn := residualNorm(a, res.X, b); rn > 1e-6 {
			t.Errorf("%s: residual %v (converged=%v after %d iters)", s.name, rn, res.Converged, res.Iterations)
		}
		res.X.Destroy()
	}
}

// TestGMRESNonsymmetric: GMRES and BiCGSTAB handle a nonsymmetric
// system that plain CG cannot.
func TestGMRESNonsymmetric(t *testing.T) {
	rt := newRT(t, 2)
	// Upwind convection-diffusion: nonsymmetric tridiagonal.
	n := int64(50)
	diag := make([]float64, n)
	lower := make([]float64, n-1)
	upper := make([]float64, n-1)
	for i := range diag {
		diag[i] = 3
	}
	for i := range lower {
		lower[i] = -1.8
		upper[i] = -0.2
	}
	a := core.Diags(rt, n, n, [][]float64{lower, diag, upper}, []int64{-1, 0, 1})
	b := onesB(rt, n)
	res := GMRES(a, b, 25, 500, 1e-9)
	if rn := residualNorm(a, res.X, b); rn > 1e-7 {
		t.Fatalf("GMRES residual %v", rn)
	}
	res2 := BiCGSTAB(a, b, 500, 1e-9)
	if rn := residualNorm(a, res2.X, b); rn > 1e-7 {
		t.Fatalf("BiCGSTAB residual %v", rn)
	}
}

func TestWeightedJacobiSmooths(t *testing.T) {
	rt := newRT(t, 2)
	a := core.Poisson2D(rt, 8)
	b := onesB(rt, 64)
	x := cunumeric.Zeros(rt, 64)
	dinv := a.Diagonal()
	one := cunumeric.Full(rt, 64, 1)
	cunumeric.DivInto(dinv, one, dinv)
	before := residualNorm(a, x, b)
	WeightedJacobi(a, x, b, dinv, 2.0/3.0, 25)
	after := residualNorm(a, x, b)
	if after >= before/2 {
		t.Fatalf("Jacobi barely smoothed: %v -> %v", before, after)
	}
}

func TestMultigridPCGBeatsPlainCG(t *testing.T) {
	rt := newRT(t, 3)
	nx := int64(32)
	a := core.Poisson2D(rt, nx)
	b := onesB(rt, nx*nx)

	mg := NewMultigrid(a, nx)
	defer mg.Destroy()
	pcg := mg.PCG(b, 200, 1e-8)
	if !pcg.Converged {
		t.Fatalf("MG-PCG did not converge in %d iterations", pcg.Iterations)
	}
	if rn := residualNorm(a, pcg.X, b); rn > 1e-7 {
		t.Fatalf("MG-PCG true residual %v", rn)
	}

	plain := CG(a, b, 200, 1e-8)
	if plain.Converged && pcg.Iterations >= plain.Iterations {
		t.Errorf("MG preconditioning should reduce iterations: %d vs %d",
			pcg.Iterations, plain.Iterations)
	}
}

func TestInjectionShape(t *testing.T) {
	rt := newRT(t, 2)
	nx := int64(8)
	a := core.Poisson2D(rt, nx)
	r := Injection(a, nx)
	if r.Rows() != 16 || r.Cols() != 64 {
		t.Fatalf("injection shape = %dx%d", r.Rows(), r.Cols())
	}
	if r.NNZ() != 16 {
		t.Fatalf("injection nnz = %d", r.NNZ())
	}
	// R Rᵀ = I for injection.
	rrt := core.SpGEMM(r, r.Transpose())
	d := rrt.ToDense()
	for i := int64(0); i < 16; i++ {
		for j := int64(0); j < 16; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d[i*16+j] != want {
				t.Fatalf("RRᵀ[%d,%d] = %v", i, j, d[i*16+j])
			}
		}
	}
}

func TestPowerIteration(t *testing.T) {
	rt := newRT(t, 2)
	// Diagonal matrix with known dominant eigenvalue 9.
	n := int64(20)
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(i%9) + 1
	}
	a := core.Diags(rt, n, n, [][]float64{d}, []int64{0})
	lambda, vec := PowerIteration(a, 300, 5)
	if math.Abs(lambda-9) > 1e-6 {
		t.Fatalf("dominant eigenvalue = %v, want 9", lambda)
	}
	vec.Destroy()
}

// TestTableauConsistency: every stage's row sum equals its abscissa and
// the weights sum to 1 — necessary conditions for the claimed order.
func TestTableauConsistency(t *testing.T) {
	for _, tab := range []Tableau{RK4(), CooperVerner8()} {
		var bsum float64
		for _, b := range tab.B {
			bsum += b
		}
		if math.Abs(bsum-1) > 1e-12 {
			t.Errorf("%s: sum(B) = %v", tab.Name, bsum)
		}
		for i := range tab.A {
			var rs float64
			for _, a := range tab.A[i] {
				rs += a
			}
			if math.Abs(rs-tab.C[i]) > 1e-12 {
				t.Errorf("%s: stage %d row sum %v != c %v", tab.Name, i, rs, tab.C[i])
			}
		}
	}
}

// TestRKOrder verifies the empirical convergence order on y' = -y by
// halving the step and measuring the error ratio: ~2^4 for RK4 and
// ≥ 2^7.5 for the 8th-order method.
func TestRKOrder(t *testing.T) {
	rt := newRT(t, 1)
	solveErr := func(tab Tableau, h float64, steps int) float64 {
		y := []*cunumeric.Array{cunumeric.Full(rt, 4, 1)}
		rk := NewRK(rt, tab, 1, 4)
		f := func(tt float64, yy, out []*cunumeric.Array) {
			cunumeric.Copy(out[0], yy[0])
			out[0].Scale(-1)
		}
		rk.Integrate(f, 0, h, steps, y)
		got := y[0].ToSlice()[0]
		want := math.Exp(-h * float64(steps))
		rk.Destroy()
		y[0].Destroy()
		return math.Abs(got - want)
	}
	// RK4: error ratio ≈ 16 when halving h.
	e1 := solveErr(RK4(), 0.2, 10)
	e2 := solveErr(RK4(), 0.1, 20)
	if ratio := e1 / e2; ratio < 12 || ratio > 20 {
		t.Errorf("RK4 halving ratio = %v, want ~16", ratio)
	}
	// CV8: with larger steps to stay above round-off.
	e1 = solveErr(CooperVerner8(), 0.8, 5)
	e2 = solveErr(CooperVerner8(), 0.4, 10)
	if ratio := e1 / e2; ratio < 150 {
		t.Errorf("CV8 halving ratio = %v, want ≳ 256 (order 8)", ratio)
	}
}

// TestRKMultiComponent integrates the rotation system (x' = -y, y' = x),
// the same real/imaginary coupling the quantum workload uses, and
// checks norm preservation and the analytic solution.
func TestRKMultiComponent(t *testing.T) {
	rt := newRT(t, 2)
	n := int64(8)
	re := cunumeric.Full(rt, n, 1)
	im := cunumeric.Zeros(rt, n)
	rk := NewRK(rt, CooperVerner8(), 2, n)
	defer rk.Destroy()
	f := func(tt float64, y, out []*cunumeric.Array) {
		// d(re)/dt = -im, d(im)/dt = re
		cunumeric.Copy(out[0], y[1])
		out[0].Scale(-1)
		cunumeric.Copy(out[1], y[0])
	}
	T := 1.5
	steps := 30
	rk.Integrate(f, 0, T/float64(steps), steps, []*cunumeric.Array{re, im})
	res, ims := re.ToSlice(), im.ToSlice()
	for i := range res {
		if math.Abs(res[i]-math.Cos(T)) > 1e-10 || math.Abs(ims[i]-math.Sin(T)) > 1e-10 {
			t.Fatalf("rotation wrong at %d: (%v, %v) want (%v, %v)",
				i, res[i], ims[i], math.Cos(T), math.Sin(T))
		}
		norm := res[i]*res[i] + ims[i]*ims[i]
		if math.Abs(norm-1) > 1e-10 {
			t.Fatalf("norm not preserved: %v", norm)
		}
	}
}

// TestMultilevelMG: a 3-level hierarchy converges in a similar iteration
// count to the two-level solver and far fewer than plain CG.
func TestMultilevelMG(t *testing.T) {
	rt := newRT(t, 2)
	nx := int64(32)
	a := core.Poisson2D(rt, nx)
	b := onesB(rt, nx*nx)
	ml := NewMultilevelMG(a, nx, 3)
	defer ml.Destroy()
	if ml.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", ml.Depth())
	}
	res := ml.PCG(b, 200, 1e-8)
	if !res.Converged {
		t.Fatalf("multilevel PCG did not converge in %d iters", res.Iterations)
	}
	if rn := residualNorm(a, res.X, b); rn > 1e-7 {
		t.Fatalf("true residual %v", rn)
	}
	plain := CG(a, b, 500, 1e-8)
	if res.Iterations >= plain.Iterations {
		t.Errorf("multilevel preconditioning should cut iterations: %d vs %d",
			res.Iterations, plain.Iterations)
	}
}
