package solvers

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestTridiagEigenvalues(t *testing.T) {
	// 2x2 [[2,1],[1,2]] has eigenvalues 1 and 3.
	eigs := tridiagEigenvalues([]float64{2, 2}, []float64{1})
	if math.Abs(eigs[0]-1) > 1e-8 || math.Abs(eigs[1]-3) > 1e-8 {
		t.Fatalf("eigs = %v, want [1 3]", eigs)
	}
	// Uncoupled diagonal.
	eigs = tridiagEigenvalues([]float64{5, -2, 7}, []float64{0, 0})
	want := []float64{-2, 5, 7}
	for i := range want {
		if math.Abs(eigs[i]-want[i]) > 1e-8 {
			t.Fatalf("eigs = %v, want %v", eigs, want)
		}
	}
}

// TestLanczosDiagonalMatrix: eigenvalues of a diagonal matrix are known
// exactly; Lanczos must find the extremes.
func TestLanczosDiagonalMatrix(t *testing.T) {
	rt := newRT(t, 3)
	n := int64(60)
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(i + 1) // eigenvalues 1..60
	}
	a := core.Diags(rt, n, n, [][]float64{d}, []int64{0})
	if got := LargestEigenvalue(a, 50, 3); math.Abs(got-60) > 1e-6 {
		t.Fatalf("largest = %v, want 60", got)
	}
	eigs := Lanczos(a, 2, 50, 3)
	// Extremes: smallest ≈ 1, largest ≈ 60.
	if math.Abs(eigs[len(eigs)-1]-60) > 1e-6 {
		t.Fatalf("top eigenvalue = %v, want 60", eigs[len(eigs)-1])
	}
	if math.Abs(eigs[0]-1) > 1e-4 {
		t.Fatalf("bottom eigenvalue = %v, want 1", eigs[0])
	}
}

// TestLanczosAgreesWithPowerIteration on a random symmetric matrix.
func TestLanczosAgreesWithPowerIteration(t *testing.T) {
	rt := newRT(t, 2)
	n := int64(50)
	r := core.Random(rt, n, n, 0.1, 11)
	sym := core.Add(r, r.Transpose(), 0.5, 0.5)
	a := core.Add(sym, core.Eye(rt, n), 1, float64(n)) // PSD shift
	lam, vec := PowerIteration(a, 400, 5)
	vec.Destroy()
	got := LargestEigenvalue(a, 40, 7)
	if math.Abs(got-lam) > 1e-6*lam {
		t.Fatalf("Lanczos %v vs power iteration %v", got, lam)
	}
}

// TestLanczosPoissonSpectrum: the 2-D Poisson operator's extreme
// eigenvalues are known analytically: 4(sin²(π/(2(n+1))) + ...) —
// smallest ≈ 2λ_min,1D, largest ≈ 8 for large grids.
func TestLanczosPoissonSpectrum(t *testing.T) {
	rt := newRT(t, 2)
	nx := int64(12)
	a := core.Poisson2D(rt, nx)
	eigs := Lanczos(a, 2, 80, 9)
	s := math.Sin(math.Pi / (2 * float64(nx+1)))
	minWant := 8 * s * s
	c := math.Sin(float64(nx) * math.Pi / (2 * float64(nx+1)))
	maxWant := 8 * c * c
	if math.Abs(eigs[0]-minWant) > 1e-6 {
		t.Errorf("λ_min = %v, want %v", eigs[0], minWant)
	}
	if math.Abs(eigs[len(eigs)-1]-maxWant) > 1e-6 {
		t.Errorf("λ_max = %v, want %v", eigs[len(eigs)-1], maxWant)
	}
}
