package solvers

import (
	"math"

	"repro/internal/cunumeric"
	"repro/internal/legion"
)

// Tableau is an explicit Runge-Kutta Butcher tableau.
type Tableau struct {
	Name  string
	Order int
	A     [][]float64 // strictly lower-triangular stage coefficients
	B     []float64   // output weights
	C     []float64   // stage abscissae
}

// Stages returns the number of stages.
func (t Tableau) Stages() int { return len(t.B) }

// RK4 is the classical 4th-order method.
func RK4() Tableau {
	return Tableau{
		Name:  "rk4",
		Order: 4,
		A: [][]float64{
			{},
			{0.5},
			{0, 0.5},
			{0, 0, 1},
		},
		B: []float64{1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6},
		C: []float64{0, 0.5, 0.5, 1},
	}
}

// CooperVerner8 is the 11-stage 8th-order method of Cooper & Verner
// (1972) — the "8th-order Runge-Kutta integration" at the core of the
// paper's quantum simulation benchmark (§6.1).
func CooperVerner8() Tableau {
	s := math.Sqrt(21)
	return Tableau{
		Name:  "cooper-verner-8",
		Order: 8,
		A: [][]float64{
			{},
			{1.0 / 2},
			{1.0 / 4, 1.0 / 4},
			{1.0 / 7, (-7 - 3*s) / 98, (21 + 5*s) / 49},
			{(11 + s) / 84, 0, (18 + 4*s) / 63, (21 - s) / 252},
			{(5 + s) / 48, 0, (9 + s) / 36, (-231 + 14*s) / 360, (63 - 7*s) / 80},
			{(10 - s) / 42, 0, (-432 + 92*s) / 315, (633 - 145*s) / 90, (-504 + 115*s) / 70, (63 - 13*s) / 35},
			{1.0 / 14, 0, 0, 0, (14 - 3*s) / 126, (13 - 3*s) / 63, 1.0 / 9},
			{1.0 / 32, 0, 0, 0, (91 - 21*s) / 576, 11.0 / 72, (-385 - 75*s) / 1152, (63 + 13*s) / 128},
			{1.0 / 14, 0, 0, 0, 1.0 / 9, (-733 - 147*s) / 2205, (515 + 111*s) / 504, (-51 - 11*s) / 56, (132 + 28*s) / 245},
			{0, 0, 0, 0, (-42 + 7*s) / 18, (-18 + 28*s) / 45, (-273 - 53*s) / 72, (301 + 53*s) / 72, (28 - 28*s) / 45, (49 - 7*s) / 18},
		},
		B: []float64{1.0 / 20, 0, 0, 0, 0, 0, 0, 49.0 / 180, 16.0 / 45, 49.0 / 180, 1.0 / 20},
		C: []float64{0, 1.0 / 2, 1.0 / 2, (7 + s) / 14, (7 + s) / 14, 1.0 / 2, (7 - s) / 14, (7 - s) / 14, 1.0 / 2, (7 + s) / 14, 1},
	}
}

// RHS evaluates out = f(t, y) for a state split into components (the
// quantum workload uses two components, the real and imaginary parts of
// the wave function).
type RHS func(t float64, y, out []*cunumeric.Array)

// RK integrates a multi-component ODE with a fixed-step explicit method,
// reusing all stage buffers across steps so the runtime reaches its
// partitioning steady state.
type RK struct {
	tab Tableau
	k   [][]*cunumeric.Array // [stage][component]
	tmp []*cunumeric.Array   // [component]
	n   int64
}

// NewRK allocates an integrator for nc state components of length n.
func NewRK(rt *legion.Runtime, tab Tableau, nc int, n int64) *RK {
	rk := &RK{tab: tab, n: n}
	rk.k = make([][]*cunumeric.Array, tab.Stages())
	for i := range rk.k {
		rk.k[i] = make([]*cunumeric.Array, nc)
		for c := range rk.k[i] {
			rk.k[i][c] = cunumeric.Zeros(rt, n)
		}
	}
	rk.tmp = make([]*cunumeric.Array, nc)
	for c := range rk.tmp {
		rk.tmp[c] = cunumeric.Zeros(rt, n)
	}
	return rk
}

// Destroy releases all stage buffers.
func (rk *RK) Destroy() {
	for _, stage := range rk.k {
		for _, a := range stage {
			a.Destroy()
		}
	}
	for _, a := range rk.tmp {
		a.Destroy()
	}
}

// Step advances y in place from t to t+h.
func (rk *RK) Step(f RHS, t, h float64, y []*cunumeric.Array) {
	tab := rk.tab
	for i := 0; i < tab.Stages(); i++ {
		for c := range y {
			cunumeric.Copy(rk.tmp[c], y[c])
			for j, aij := range tab.A[i] {
				if aij != 0 {
					cunumeric.AXPY(h*aij, rk.k[j][c], rk.tmp[c])
				}
			}
		}
		f(t+tab.C[i]*h, rk.tmp, rk.k[i])
	}
	for i, bi := range tab.B {
		if bi == 0 {
			continue
		}
		for c := range y {
			cunumeric.AXPY(h*bi, rk.k[i][c], y[c])
		}
	}
}

// Integrate advances y from t0 over steps fixed steps of size h,
// returning the final time.
func (rk *RK) Integrate(f RHS, t0, h float64, steps int, y []*cunumeric.Array) float64 {
	t := t0
	for s := 0; s < steps; s++ {
		rk.Step(f, t, h, y)
		t += h
	}
	return t
}
