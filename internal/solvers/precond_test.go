package solvers

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cunumeric"
)

func TestPCGJacobiConvergesFasterOnScaledSystem(t *testing.T) {
	rt := newRT(t, 3)
	// A badly diagonally-scaled SPD system: D^(1/2) L D^(1/2) where L is
	// the Poisson operator and D spans several orders of magnitude —
	// the case where Jacobi preconditioning pays off.
	nx := int64(12)
	n := nx * nx
	l := core.Poisson2D(rt, nx)
	dvals := make([]float64, n)
	for i := range dvals {
		dvals[i] = math.Pow(10, float64(i%5)) // 1 .. 10^4
	}
	d := core.Diags(rt, n, n, [][]float64{dvals}, []int64{0})
	ld := core.SpGEMM(l, d)
	a := core.SpGEMM(d, ld)
	// Symmetrize against round-off.
	at := a.Transpose()
	a = core.Add(a, at, 0.5, 0.5)

	b := cunumeric.Full(rt, n, 1)
	plain := CG(a, b, 3000, 1e-6)
	pcg := PCGJacobi(a, b, 3000, 1e-6)
	if !pcg.Converged {
		t.Fatalf("PCG-Jacobi did not converge (%d iters)", pcg.Iterations)
	}
	if rn := residualNorm(a, pcg.X, b); rn > 1e-5 {
		t.Fatalf("PCG-Jacobi residual %v", rn)
	}
	if plain.Converged && pcg.Iterations >= plain.Iterations {
		t.Errorf("Jacobi preconditioning should help a badly scaled system: %d vs %d iters",
			pcg.Iterations, plain.Iterations)
	}
}

// TestRKF45AccuracyAndAdaptivity: the adaptive integrator hits the
// requested tolerance on y' = -y and takes larger steps when the
// tolerance is loose.
func TestRKF45AccuracyAndAdaptivity(t *testing.T) {
	rt := newRT(t, 2)
	decay := func(tt float64, y, out []*cunumeric.Array) {
		cunumeric.Copy(out[0], y[0])
		out[0].Scale(-1)
	}
	solve := func(rtol float64) (float64, int) {
		y := []*cunumeric.Array{cunumeric.Full(rt, 8, 1)}
		defer y[0].Destroy()
		tEnd, steps := RKF45(rt, decay, 0, 2.0, y, rtol, 0.1)
		if math.Abs(tEnd-2.0) > 1e-12 {
			t.Fatalf("integrator stopped at t=%v", tEnd)
		}
		got := y[0].ToSlice()[0]
		return math.Abs(got - math.Exp(-2)), steps
	}
	errTight, stepsTight := solve(1e-10)
	errLoose, stepsLoose := solve(1e-4)
	if errTight > 1e-8 {
		t.Errorf("tight-tolerance error %v too large", errTight)
	}
	if stepsLoose >= stepsTight {
		t.Errorf("loose tolerance should take fewer steps: %d vs %d", stepsLoose, stepsTight)
	}
	if errLoose < errTight {
		t.Logf("note: loose run happened to be more accurate (%v vs %v)", errLoose, errTight)
	}
}

// TestRKF45MatchesRK8OnRotation: the adaptive and fixed-step
// integrators agree on the two-component rotation system.
func TestRKF45MatchesRK8OnRotation(t *testing.T) {
	rt := newRT(t, 2)
	rot := func(tt float64, y, out []*cunumeric.Array) {
		cunumeric.Copy(out[0], y[1])
		out[0].Scale(-1)
		cunumeric.Copy(out[1], y[0])
	}
	re := cunumeric.Full(rt, 4, 1)
	im := cunumeric.Zeros(rt, 4)
	RKF45(rt, rot, 0, 1.0, []*cunumeric.Array{re, im}, 1e-10, 0.05)
	res, ims := re.ToSlice(), im.ToSlice()
	if math.Abs(res[0]-math.Cos(1)) > 1e-7 || math.Abs(ims[0]-math.Sin(1)) > 1e-7 {
		t.Fatalf("rotation = (%v, %v), want (%v, %v)", res[0], ims[0], math.Cos(1), math.Sin(1))
	}
}
