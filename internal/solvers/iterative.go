// Package solvers contains the higher-level linear algebra the paper
// ports from SciPy and CuPy onto Legate Sparse and cuNumeric (§5.2):
// the iterative Krylov solvers (CG, CGS, BiCG, BiCGSTAB, GMRES), the
// weighted-Jacobi smoother and two-level geometric multigrid of the GMG
// benchmark (§6.1), a power-iteration eigensolver, and explicit
// Runge-Kutta integrators including the 8th-order method the quantum
// simulation uses (§6.1).
//
// Every solver is written purely against the public APIs of core and
// cunumeric — no direct region or partition manipulation — which is the
// point the paper makes about bootstrapping the library with itself:
// porting a SciPy solver is mechanical once the array and sparse layers
// compose.
package solvers

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
)

// Result reports the outcome of an iterative solve.
type Result struct {
	X          *cunumeric.Array
	Iterations int
	Residuals  []float64 // per-iteration residual norms
	Converged  bool

	// Err is non-nil when the solve stopped for a reason other than
	// convergence or iteration exhaustion: a numerical breakdown (a
	// zero denominator in the recurrence, a NaN or Inf residual) or a
	// sticky runtime error (modeled OOM, unrecoverable fault).
	Err error
}

// BreakdownError reports a numerical breakdown of an iterative solver:
// a denominator in the Krylov recurrence hit exactly zero, or the
// residual norm left the finite floats. SciPy signals these with
// info < 0; here the failing quantity and iteration are named.
type BreakdownError struct {
	Solver    string
	Iteration int
	Reason    string
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("solvers: %s breakdown at iteration %d: %s", e.Solver, e.Iteration, e.Reason)
}

// breakdown records a breakdown on res unless the solve already
// converged (a zero denominator *after* convergence is the normal exit
// of an exactly-solved system, not an error).
func (res *Result) breakdown(solver, reason string) {
	if !res.Converged && res.Err == nil {
		res.Err = &BreakdownError{Solver: solver, Iteration: res.Iterations, Reason: reason}
	}
}

// residualOK records a breakdown and returns false when a residual
// norm is NaN or Inf — the iteration has diverged and no further step
// can recover it.
func (res *Result) residualOK(solver string, nrm float64) bool {
	if math.IsNaN(nrm) || math.IsInf(nrm, 0) {
		res.breakdown(solver, fmt.Sprintf("residual norm is %v", nrm))
		return false
	}
	return true
}

// finish propagates a sticky runtime error into the result. Kernel
// values funnel through Future.Get, so by the time a solver returns,
// any modeled OOM or unrecovered fault is visible on the runtime; a
// runtime error outranks whatever numeric state the solve limped to.
func (res *Result) finish(rt *legion.Runtime) *Result {
	if err := rt.Err(); err != nil {
		res.Err = err
		res.Converged = false
	} else if err := rt.Cancelled(); err != nil {
		// Kernels were skipped from the cancellation point on, so any
		// numeric state (including an apparent zero residual) is
		// meaningless; the cancellation outranks it.
		res.Err = err
		res.Converged = false
	}
	return res
}

// stopped reports whether the launch stream has been cooperatively
// cancelled. Iteration loops poll it so a timed-out or abandoned solve
// stops at the next iteration boundary instead of spinning through
// skipped kernels (whose futures read as zeros and could otherwise fake
// convergence or a breakdown).
func stopped(rt *legion.Runtime) bool { return rt.Cancelled() != nil }

// CG solves the SPD system A x = b with the conjugate-gradient method,
// the solver of the paper's Figure 9 benchmark. Work buffers are reused
// across iterations so the program reaches the steady state of §4.3
// (stable partitions, halo-only communication).
func CG(a core.SparseMatrix, b *cunumeric.Array, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	n := b.Len()
	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	cunumeric.Copy(r, b) // r = b - A*0 = b
	p := cunumeric.Zeros(rt, n)
	cunumeric.Copy(p, r)
	ap := cunumeric.Zeros(rt, n)

	res := &Result{X: x}
	rs := cunumeric.Dot(r, r).Get()
	for it := 0; it < maxIter && !stopped(rt); it++ {
		a.SpMVInto(ap, p)
		pap := cunumeric.Dot(p, ap).Get()
		if pap == 0 {
			res.breakdown("cg", "p·Ap = 0")
			break
		}
		alpha := rs / pap
		cunumeric.AXPY(alpha, p, x)
		cunumeric.AXPY(-alpha, ap, r)
		rsNew := cunumeric.Dot(r, r).Get()
		nrm := math.Sqrt(rsNew)
		res.Iterations = it + 1
		res.Residuals = append(res.Residuals, nrm)
		if !res.residualOK("cg", nrm) {
			break
		}
		if nrm < tol {
			res.Converged = true
			break
		}
		cunumeric.AXPBY(1, r, rsNew/rs, p) // p = r + beta p
		rs = rsNew
	}
	r.Destroy()
	p.Destroy()
	ap.Destroy()
	return res.finish(rt)
}

// CGS solves A x = b with the conjugate-gradient-squared method (ported
// from scipy.sparse.linalg.cgs).
func CGS(a core.SparseMatrix, b *cunumeric.Array, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	n := b.Len()
	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	cunumeric.Copy(r, b)
	rTilde := cunumeric.Zeros(rt, n)
	cunumeric.Copy(rTilde, b)
	u := cunumeric.Zeros(rt, n)
	cunumeric.Copy(u, r)
	p := cunumeric.Zeros(rt, n)
	cunumeric.Copy(p, r)
	q := cunumeric.Zeros(rt, n)
	vh := cunumeric.Zeros(rt, n)
	uq := cunumeric.Zeros(rt, n)
	tmp := cunumeric.Zeros(rt, n)

	res := &Result{X: x}
	rho := cunumeric.Dot(rTilde, r).Get()
	for it := 0; it < maxIter && !stopped(rt); it++ {
		if rho == 0 {
			res.breakdown("cgs", "rho = r̃·r = 0")
			break
		}
		a.SpMVInto(vh, p)
		sigma := cunumeric.Dot(rTilde, vh).Get()
		if sigma == 0 {
			res.breakdown("cgs", "sigma = r̃·Ap = 0")
			break
		}
		alpha := rho / sigma
		// q = u - alpha*vh
		cunumeric.Copy(q, u)
		cunumeric.AXPY(-alpha, vh, q)
		// uq = u + q
		cunumeric.AddInto(uq, u, q)
		cunumeric.AXPY(alpha, uq, x)
		a.SpMVInto(tmp, uq)
		cunumeric.AXPY(-alpha, tmp, r)
		nrm := math.Sqrt(cunumeric.Dot(r, r).Get())
		res.Iterations = it + 1
		res.Residuals = append(res.Residuals, nrm)
		if !res.residualOK("cgs", nrm) {
			break
		}
		if nrm < tol {
			res.Converged = true
			break
		}
		rhoNew := cunumeric.Dot(rTilde, r).Get()
		beta := rhoNew / rho
		// u = r + beta*q
		cunumeric.Copy(u, r)
		cunumeric.AXPY(beta, q, u)
		// p = u + beta*(q + beta*p)
		cunumeric.AXPBY(1, q, beta, p)
		cunumeric.AXPBY(1, u, beta, p)
		rho = rhoNew
	}
	for _, buf := range []*cunumeric.Array{r, rTilde, u, p, q, vh, uq, tmp} {
		buf.Destroy()
	}
	return res.finish(rt)
}

// BiCG solves A x = b with the biconjugate-gradient method; it uses Aᵀ
// explicitly (computed once), like SciPy's implementation uses rmatvec.
func BiCG(a core.SparseMatrix, b *cunumeric.Array, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	at := core.TransposeCSR(a)
	defer at.Destroy()
	n := b.Len()
	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	cunumeric.Copy(r, b)
	rTilde := cunumeric.Zeros(rt, n)
	cunumeric.Copy(rTilde, b)
	p := cunumeric.Zeros(rt, n)
	cunumeric.Copy(p, r)
	pTilde := cunumeric.Zeros(rt, n)
	cunumeric.Copy(pTilde, rTilde)
	ap := cunumeric.Zeros(rt, n)
	atp := cunumeric.Zeros(rt, n)

	res := &Result{X: x}
	rho := cunumeric.Dot(rTilde, r).Get()
	for it := 0; it < maxIter && !stopped(rt); it++ {
		if rho == 0 {
			res.breakdown("bicg", "rho = r̃·r = 0")
			break
		}
		a.SpMVInto(ap, p)
		at.SpMVInto(atp, pTilde)
		den := cunumeric.Dot(pTilde, ap).Get()
		if den == 0 {
			res.breakdown("bicg", "p̃·Ap = 0")
			break
		}
		alpha := rho / den
		cunumeric.AXPY(alpha, p, x)
		cunumeric.AXPY(-alpha, ap, r)
		cunumeric.AXPY(-alpha, atp, rTilde)
		nrm := math.Sqrt(cunumeric.Dot(r, r).Get())
		res.Iterations = it + 1
		res.Residuals = append(res.Residuals, nrm)
		if !res.residualOK("bicg", nrm) {
			break
		}
		if nrm < tol {
			res.Converged = true
			break
		}
		rhoNew := cunumeric.Dot(rTilde, r).Get()
		beta := rhoNew / rho
		cunumeric.AXPBY(1, r, beta, p)
		cunumeric.AXPBY(1, rTilde, beta, pTilde)
		rho = rhoNew
	}
	for _, buf := range []*cunumeric.Array{r, rTilde, p, pTilde, ap, atp} {
		buf.Destroy()
	}
	return res.finish(rt)
}

// BiCGSTAB solves A x = b with the stabilized biconjugate-gradient
// method (scipy.sparse.linalg.bicgstab).
func BiCGSTAB(a core.SparseMatrix, b *cunumeric.Array, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	n := b.Len()
	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	cunumeric.Copy(r, b)
	rHat := cunumeric.Zeros(rt, n)
	cunumeric.Copy(rHat, r)
	p := cunumeric.Zeros(rt, n)
	cunumeric.Copy(p, r)
	v := cunumeric.Zeros(rt, n)
	s := cunumeric.Zeros(rt, n)
	t := cunumeric.Zeros(rt, n)

	res := &Result{X: x}
	rho := cunumeric.Dot(rHat, r).Get()
	for it := 0; it < maxIter && !stopped(rt); it++ {
		if rho == 0 {
			res.breakdown("bicgstab", "rho = r̂·r = 0")
			break
		}
		a.SpMVInto(v, p)
		den := cunumeric.Dot(rHat, v).Get()
		if den == 0 {
			res.breakdown("bicgstab", "r̂·Ap = 0")
			break
		}
		alpha := rho / den
		// s = r - alpha*v
		cunumeric.Copy(s, r)
		cunumeric.AXPY(-alpha, v, s)
		a.SpMVInto(t, s)
		tt := cunumeric.Dot(t, t).Get()
		var omega float64
		if tt != 0 {
			omega = cunumeric.Dot(t, s).Get() / tt
		}
		cunumeric.AXPY(alpha, p, x)
		cunumeric.AXPY(omega, s, x)
		// r = s - omega*t
		cunumeric.Copy(r, s)
		cunumeric.AXPY(-omega, t, r)
		nrm := math.Sqrt(cunumeric.Dot(r, r).Get())
		res.Iterations = it + 1
		res.Residuals = append(res.Residuals, nrm)
		if !res.residualOK("bicgstab", nrm) {
			break
		}
		if nrm < tol {
			res.Converged = true
			break
		}
		rhoNew := cunumeric.Dot(rHat, r).Get()
		if omega == 0 {
			res.breakdown("bicgstab", "omega = t·s/t·t = 0")
			break
		}
		beta := (rhoNew / rho) * (alpha / omega)
		// p = r + beta*(p - omega*v)
		cunumeric.AXPY(-omega, v, p)
		cunumeric.AXPBY(1, r, beta, p)
		rho = rhoNew
	}
	for _, buf := range []*cunumeric.Array{r, rHat, p, v, s, t} {
		buf.Destroy()
	}
	return res.finish(rt)
}

// GMRES solves A x = b with restarted GMRES(m). The Krylov basis
// vectors are distributed arrays; the small Hessenberg least-squares
// problem is solved on the host with Givens rotations, exactly like the
// SciPy implementation this is ported from.
func GMRES(a core.SparseMatrix, b *cunumeric.Array, restart, maxIter int, tol float64) *Result {
	rt := a.Runtime()
	n := b.Len()
	x := cunumeric.Zeros(rt, n)
	r := cunumeric.Zeros(rt, n)
	w := cunumeric.Zeros(rt, n)
	res := &Result{X: x}

	basis := make([]*cunumeric.Array, restart+1)
	for i := range basis {
		basis[i] = cunumeric.Zeros(rt, n)
	}
	defer func() {
		for _, v := range basis {
			v.Destroy()
		}
		r.Destroy()
		w.Destroy()
	}()

	h := make([][]float64, restart+1)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)

	for res.Iterations < maxIter && !stopped(rt) {
		// r = b - A x
		a.SpMVInto(r, x)
		cunumeric.AXPBY(1, b, -1, r)
		beta := math.Sqrt(cunumeric.Dot(r, r).Get())
		if res.Iterations == 0 {
			res.Residuals = append(res.Residuals, beta)
		}
		if !res.residualOK("gmres", beta) {
			return res.finish(rt)
		}
		if beta < tol {
			res.Converged = true
			return res.finish(rt)
		}
		cunumeric.Copy(basis[0], r)
		basis[0].Scale(1 / beta)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < restart && res.Iterations < maxIter; k++ {
			a.SpMVInto(w, basis[k])
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = cunumeric.Dot(w, basis[i]).Get()
				cunumeric.AXPY(-h[i][k], basis[i], w)
			}
			h[k+1][k] = math.Sqrt(cunumeric.Dot(w, w).Get())
			if h[k+1][k] != 0 {
				cunumeric.Copy(basis[k+1], w)
				basis[k+1].Scale(1 / h[k+1][k])
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				res.breakdown("gmres", "Givens denominator = 0")
				k++
				break
			}
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
			h[k][k] = denom
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			res.Iterations++
			nrm := math.Abs(g[k+1])
			res.Residuals = append(res.Residuals, nrm)
			if !res.residualOK("gmres", nrm) {
				k++
				break
			}
			if nrm < tol {
				k++
				res.Converged = true
				break
			}
		}
		// Back-substitute y from the triangular system and update x.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			y[i] = g[i]
			for j := i + 1; j < k; j++ {
				y[i] -= h[i][j] * y[j]
			}
			y[i] /= h[i][i]
		}
		for i := 0; i < k; i++ {
			cunumeric.AXPY(y[i], basis[i], x)
		}
		// A breakdown without an iteration-count advance would otherwise
		// respin the outer loop on the same data forever.
		if res.Converged || res.Err != nil {
			return res.finish(rt)
		}
	}
	return res.finish(rt)
}

// PowerIteration estimates the dominant eigenvalue and eigenvector of A
// via power iteration with the Rayleigh quotient, the computation of the
// paper's Figure 1.
func PowerIteration(a core.SparseMatrix, iters int, seed uint64) (float64, *cunumeric.Array) {
	rt := a.Runtime()
	n := a.Rows()
	x := cunumeric.Random(rt, n, seed)
	y := cunumeric.Zeros(rt, n)
	for i := 0; i < iters && !stopped(rt); i++ {
		a.SpMVInto(y, x)
		nrm := cunumeric.Norm(y)
		if nrm == 0 {
			break
		}
		y.Scale(1 / nrm)
		x, y = y, x
	}
	a.SpMVInto(y, x)
	lambda := cunumeric.Dot(x, y).Get()
	y.Destroy()
	return lambda, x
}

// Fence is a convenience re-export so benchmark drivers can synchronize
// without importing legion directly.
func Fence(rt *legion.Runtime) { rt.Fence() }
