#!/bin/sh
# check_boundary.sh enforces the engine/transport split: the solver
# engine (internal/serve/engine), the loopback transport's engine side
# (internal/serve/loopback), and the shard coordinator (internal/shard)
# must stay wire-format agnostic — no net/http, no encoding/json.
# Transports own marshalling; everything below them speaks the typed
# Request/Response API only. The check reads the compiler's view of
# each package's imports (go list), not source text, so commented-out
# or build-tagged imports cannot slip through.
set -eu
cd "$(dirname "$0")/.."

fail=0
for pkg in ./internal/serve/engine ./internal/serve/loopback ./internal/shard; do
    bad=$(go list -f '{{range .Imports}}{{.}}
{{end}}' "$pkg" | grep -x -e 'net/http' -e 'encoding/json' || true)
    if [ -n "$bad" ]; then
        echo "boundary violation: $pkg imports:"
        echo "$bad" | sed 's/^/    /'
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "engine and shard packages must not import net/http or encoding/json;"
    echo "marshalling belongs to a transport (internal/serve/httpapi)."
    exit 1
fi
echo "boundary check ok: engine/shard packages are transport-free"
