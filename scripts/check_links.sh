#!/bin/sh
# check_links.sh — markdown link check.
#
# Verifies that every relative markdown link target in the top-level
# documents exists on disk. External (http/https) links and pure
# anchors are skipped: the docs must stay self-consistent offline.
set -eu

cd "$(dirname "$0")/.."

docs="README.md DESIGN.md ARCHITECTURE.md EXPERIMENTS.md ROADMAP.md"
fail=0
for doc in $docs; do
    [ -e "$doc" ] || { echo "missing document: $doc"; fail=1; continue; }
    # Extract (target) parts of [text](target) links, one per line.
    targets=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' || true)
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*) continue ;; # external
        \#*) continue ;;                         # in-page anchor
        esac
        path=${t%%#*} # strip anchor from file.md#section
        [ -n "$path" ] || continue
        if [ ! -e "$path" ]; then
            echo "$doc: broken link -> $t"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "link check failed"
    exit 1
fi
echo "link check ok"
