#!/bin/sh
# check_docs.sh — the `make docs` gate.
#
# Fails if any package in the module lacks a package-level doc comment
# (a // comment block immediately above the package clause in at least
# one non-test file). ARCHITECTURE.md's package inventory is checked by
# check_links.sh; this script keeps godoc itself from regressing.
set -eu

cd "$(dirname "$0")/.."

fail=0
for pkg in $(go list ./...); do
    dir=${pkg#repro}
    dir=.${dir}
    documented=no
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in *_test.go) continue ;; esac
        if awk 'prev ~ /^\/\// && $0 ~ /^package [a-z]/ {found=1; exit} {prev=$0} END {exit !found}' "$f"; then
            documented=yes
            break
        fi
    done
    if [ "$documented" = no ]; then
        echo "undocumented package: $pkg (no package comment in any file)"
        fail=1
    fi
done

# Every internal and cmd package must appear in ARCHITECTURE.md's
# inventory and in the doc.go package tree.
for pkg in $(go list ./internal/... ./cmd/...); do
    short=${pkg#repro/}
    if ! grep -q "$short" ARCHITECTURE.md; then
        echo "package $short is missing from ARCHITECTURE.md"
        fail=1
    fi
    if ! grep -q "$short" doc.go; then
        echo "package $short is missing from the doc.go package tree"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs check failed"
    exit 1
fi
echo "docs check ok"
