GO ?= go

.PHONY: check vet build test race bench-fusion chaos

# check is the full pre-merge gate: static analysis, build, the race-
# enabled test suite, the fault-injection suite, and one pass over the
# fusion wall-clock benchmarks (compile + run, not a timing study — use
# `go test -bench` directly with a real -benchtime for numbers).
check: vet build race chaos bench-fusion

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: injector determinism, kernel-panic routing, checkpoint/
# replay bit-identity, processor-death degradation, and the CG chaos
# acceptance test.
chaos:
	$(GO) test -race -run 'Fault|Panic|Recovery|ProcDeath|Rescale|Checkpoint|Sticky|Chaos' ./internal/fault/ ./internal/legion/ ./internal/bench/

bench-fusion:
	$(GO) test -run=NONE -bench=BenchmarkFusion -benchtime=1x ./...
