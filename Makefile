GO ?= go

.PHONY: check fmt vet build test race bench-fusion chaos prof

# check is the full pre-merge gate: formatting, static analysis, build,
# the race-enabled test suite, the fault-injection suite, one pass over
# the fusion wall-clock benchmarks (compile + run, not a timing study —
# use `go test -bench` directly with a real -benchtime for numbers), and
# the legate-prof artifact smoke test.
check: fmt vet build race chaos bench-fusion prof

# fmt fails (and lists offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: injector determinism, kernel-panic routing, checkpoint/
# replay bit-identity, processor-death degradation, and the CG chaos
# acceptance test.
chaos:
	$(GO) test -race -run 'Fault|Panic|Recovery|ProcDeath|Rescale|Checkpoint|Sticky|Chaos' ./internal/fault/ ./internal/legion/ ./internal/bench/

bench-fusion:
	$(GO) test -run=NONE -bench=BenchmarkFusion -benchtime=1x ./...

# prof smoke-tests the observability pipeline: run legate-prof on a
# small CG preset and let -check validate that the Chrome trace parses,
# the per-processor timelines never overlap, the DOT dependence graph is
# well-formed, and the critical-path bounds are self-consistent.
prof:
	$(GO) run ./cmd/legate-prof -preset cg -procs 4 -units 1024 \
		-out $${TMPDIR:-/tmp}/legate-prof-smoke -check >/dev/null
