GO ?= go

.PHONY: check fmt vet build test race bench-fusion bench-serve bench-tune bench-json chaos overload prof serve shard boundary tune docs links

# check is the full pre-merge gate: formatting, static analysis, build,
# the race-enabled test suite (including the legate-serve e2e suite),
# the fault-injection suite, the overload-chaos lifecycle suite, the
# shard scatter/gather bit-identity suite, the feedback-directed
# mapping suite, one pass over the fusion, serve, and tune wall-clock
# benchmarks (compile + run, not a timing study — use `go test -bench`
# directly with a real -benchtime for numbers), the legate-prof
# artifact smoke test, the engine/transport boundary check, and the
# documentation gates.
check: fmt vet build race chaos overload shard tune bench-fusion bench-serve bench-tune prof boundary docs links

# fmt fails (and lists offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: injector determinism, kernel-panic routing, checkpoint/
# replay bit-identity, processor-death degradation, and the CG chaos
# acceptance test.
chaos:
	$(GO) test -race -run 'Fault|Panic|Recovery|ProcDeath|Rescale|Checkpoint|Sticky|Chaos' ./internal/fault/ ./internal/legion/ ./internal/bench/

# overload runs the deterministic overload-chaos lifecycle suite under
# the race detector: deadline cancellation that keeps the worker warm
# and bit-identical, bounded-queue / quota / queue-wait shedding with
# Retry-After envelopes, the circuit-breaker lifecycle, graceful drain,
# the mixed-traffic chaos run, and the goroutine-leak check.
overload:
	$(GO) test -race -count=1 -run 'Overload' ./internal/serve/...

# serve runs the legate-serve end-to-end suite on its own (it is also
# part of `race`): served results bit-identical to direct solver calls,
# 64-way concurrency under fault injection, cache invalidation on
# re-upload, pool replacement on processor death, batching coalescing.
serve:
	$(GO) test -race -count=1 ./internal/serve/...

# shard runs the scatter/gather execution-plane chaos suite under the
# race detector: a 2-shard deployment bit-identical to a single-process
# engine for every preset (CG, power iteration, SpMV), replica failover
# under seeded fault injection with the same bit-identity, coordinator
# drain, passthrough routing, and the partition/ring/reduction-fold
# unit invariants.
shard:
	$(GO) test -race -count=1 -run 'Shard' ./internal/shard/

# boundary fails the build if the engine or shard packages grow a
# dependency on net/http or encoding/json — the line that keeps every
# transport thin and the solver plane wire-format agnostic.
boundary:
	./scripts/check_boundary.sh

# tune runs the feedback-directed mapping suite under the race detector
# (tuned results bit-identical to the static mapper, including under
# fault injection and checkpoint/replay; deterministic variant picks;
# scoped plan-cache isolation) plus a tuned-CG ablation smoke run.
tune:
	$(GO) test -race -count=1 ./internal/tune/
	$(GO) run -race ./cmd/legate-bench -exp tune -tune-presets cg -runs 1 >/dev/null

bench-fusion:
	$(GO) test -run=NONE -bench=BenchmarkFusion -benchtime=1x ./...

bench-serve:
	$(GO) test -run=NONE -bench=BenchmarkServe -benchtime=1x ./internal/serve/...

bench-tune:
	$(GO) test -run=NONE -bench=BenchmarkTune -benchtime=1x .

# bench-json regenerates BENCH_pr6.json: the tuned-vs-static throughput
# of every preset as machine-readable records stamped with the current
# commit.
bench-json:
	$(GO) run ./cmd/legate-bench -exp tune -json BENCH_pr6.json \
		-commit $$(git rev-parse --short HEAD)

# bench-json-serve regenerates BENCH_pr7.json: the serve load test —
# including the overload case's throughput, p50/p99, and shed rate —
# as machine-readable records stamped with the current commit.
bench-json-serve:
	$(GO) run ./cmd/legate-bench -exp serve -json BENCH_pr7.json \
		-commit $$(git rev-parse --short HEAD)

# bench-json-shard regenerates BENCH_pr9.json: the sharded-serve
# scaling sweep — warm CG and the GMG-style V-cycle SpMV ladder at 1,
# 2, and 4 shards against the single-process baseline — as
# machine-readable records stamped with the current commit.
bench-json-shard:
	$(GO) run ./cmd/legate-bench -exp shard -json BENCH_pr9.json \
		-commit $$(git rev-parse --short HEAD)

# docs fails if any package lacks a package-level doc comment, or if
# ARCHITECTURE.md / doc.go miss a package.
docs:
	./scripts/check_docs.sh

# links fails on broken relative links in the top-level markdown docs.
links:
	./scripts/check_links.sh

# prof smoke-tests the observability pipeline: run legate-prof on a
# small CG preset and let -check validate that the Chrome trace parses,
# the per-processor timelines never overlap, the DOT dependence graph is
# well-formed, and the critical-path bounds are self-consistent.
prof:
	$(GO) run ./cmd/legate-prof -preset cg -procs 4 -units 1024 \
		-out $${TMPDIR:-/tmp}/legate-prof-smoke -check >/dev/null
