GO ?= go

.PHONY: check vet build test race bench-fusion

# check is the full pre-merge gate: static analysis, build, the race-
# enabled test suite, and one pass over the fusion wall-clock benchmarks
# (compile + run, not a timing study — use `go test -bench` directly
# with a real -benchtime for numbers).
check: vet build race bench-fusion

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-fusion:
	$(GO) test -run=NONE -bench=BenchmarkFusion -benchtime=1x ./...
