// Command legate-info prints the library's inventory: the simulated
// machine shape, the DISTAL-generated kernel variants available for
// dynamic dispatch, the SciPy Sparse API coverage in the taxonomy of
// the paper's §5, and the ablation toggles.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/distal"
	"repro/internal/legion"
	"repro/internal/machine"
)

func main() {
	nodes := flag.Int("nodes", 1, "nodes of the simulated machine to describe")
	fusion := flag.Bool("fusion", true, "enable the runtime's task-fusion window in the demo")
	profile := flag.Bool("profile", false, "dump the demo run's per-task profile table")
	copies := flag.Bool("copies", false, "dump the demo run's per-link-class copy and byte counts")
	flag.Parse()

	if !*fusion {
		legion.SetDefaultFusionWindow(0)
	}

	m := machine.Summit(*nodes)
	fmt.Printf("Simulated machine: %d node(s), %d CPU sockets, %d GPUs\n",
		m.Nodes, m.CountKind(machine.CPU), m.CountKind(machine.GPU))
	cost := machine.LegateCost()
	fmt.Printf("  GPU sparse rate %.2e elem/s, CPU %.2e; NVLink %.0f GB/s, IB %.1f GB/s\n",
		cost.Rate[machine.GPU][machine.SparseIter], cost.Rate[machine.CPU][machine.SparseIter],
		cost.Bandwidth[machine.NVLink]/1e9, cost.Bandwidth[machine.InterNode]/1e9)
	fmt.Printf("  Legate launch overhead %v (+%v/point); PETSc %v; CuPy %v\n\n",
		cost.LaunchOverhead, cost.AnalysisPerPoint,
		machine.PETScCost().LaunchOverhead, machine.CuPyCost().LaunchOverhead)

	fmt.Println("DISTAL-generated kernel variants (op/format/target):")
	for _, k := range distal.Standard.Keys() {
		fmt.Printf("  %s\n", k)
	}

	counts := core.CoverageCounts()
	fmt.Printf("\nSciPy Sparse API coverage (§5 taxonomy): %d generated, %d ported, %d hand-written\n",
		counts[core.Generated], counts[core.Ported], counts[core.HandWritten])
	for _, e := range core.Coverage() {
		fmt.Printf("  %-45s %-18s %s\n", e.Name, e.Formats, e.Kind)
	}

	fmt.Printf("\nTask-fusion window: %d launches (set -fusion=false to disable)\n",
		legion.DefaultFusionWindow())
	fmt.Println("Fusion demo: 8 back-to-back AXPY launches on 2 GPUs:")
	rt := legion.NewRuntime(m, m.Select(machine.GPU, 2))
	x := cunumeric.Full(rt, 1<<12, 1)
	y := cunumeric.Zeros(rt, 1<<12)
	for k := 0; k < 8; k++ {
		cunumeric.AXPY(0.125, x, y)
	}
	rt.Fence()
	groups, members := rt.Profile().FusedLaunchCounts()
	fmt.Printf("  fused launches issued: %d (absorbing %d originals); simulated time %v\n",
		groups, members, rt.SimTime())
	if *profile {
		fmt.Println("\nDemo run profile:")
		fmt.Print(rt.Profile().String())
	}
	if *copies {
		fmt.Println("\nDemo run copies by link class:")
		fmt.Printf("  %-12s %10s %14s\n", "link", "copies", "bytes")
		st := rt.Stats()
		for l := machine.SameProc; l <= machine.InterNode; l++ {
			fmt.Printf("  %-12s %10d %14d\n", l, st.LinkCopies(l), st.LinkBytes(l))
		}
	}
	rt.Shutdown()
}
