// Command solve loads a Matrix Market file and runs one of the
// library's iterative solvers on it — the workflow a SciPy user
// replaces with scipy.io.mmread + scipy.sparse.linalg.
//
// Usage:
//
//	solve -matrix A.mtx [-solver cg|pcg|bicgstab|gmres] [-gpus N]
//	      [-format csr|csc|coo|dia|bsr] [-block N]
//	      [-tol 1e-8] [-maxiter 5000] [-profile]
//
// -format converts the operand before solving; every solver runs
// against the core.SparseMatrix interface, so any storage format's
// compiled kernels drive the same Krylov iteration.
//
// The right-hand side is all ones (pass -rhs-random for a seeded random
// vector). Exit status 1 means the solver did not converge.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/solvers"
)

func main() {
	matrix := flag.String("matrix", "", "Matrix Market file (required)")
	solver := flag.String("solver", "cg", "cg, pcg, bicgstab, or gmres")
	gpus := flag.Int("gpus", 3, "simulated GPUs")
	tol := flag.Float64("tol", 1e-8, "residual tolerance")
	maxiter := flag.Int("maxiter", 5000, "iteration cap")
	rhsRandom := flag.Bool("rhs-random", false, "random right-hand side instead of ones")
	format := flag.String("format", "csr", "operand storage format: csr, csc, coo, dia, or bsr")
	block := flag.Int64("block", 2, "BSR block size (with -format bsr)")
	profile := flag.Bool("profile", false, "print the per-task runtime profile")
	flag.Parse()
	if *matrix == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*matrix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer f.Close()

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	csr, err := core.ReadMatrixMarket(rt, f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rows, cols := csr.Shape()
	if rows != cols {
		fmt.Fprintf(os.Stderr, "solve: %s is %dx%d; iterative solvers need a square system\n",
			*matrix, rows, cols)
		os.Exit(2)
	}

	var a core.SparseMatrix
	switch *format {
	case "csr":
		a = csr
	case "csc":
		a = csr.ToCSC()
	case "coo":
		a = csr.ToCOO()
	case "dia":
		a = csr.ToDIA()
	case "bsr":
		if *block <= 0 || rows%*block != 0 {
			fmt.Fprintf(os.Stderr, "solve: -block %d must be positive and divide the dimension %d (BSR conversion pads otherwise)\n",
				*block, rows)
			os.Exit(2)
		}
		a = csr.ToBSR(*block)
	default:
		fmt.Fprintf(os.Stderr, "solve: unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Printf("loaded %v from %s\n", a, *matrix)

	var b *cunumeric.Array
	if *rhsRandom {
		b = cunumeric.Random(rt, rows, 1)
	} else {
		b = cunumeric.Full(rt, rows, 1)
	}

	var res *solvers.Result
	switch *solver {
	case "cg":
		res = solvers.CG(a, b, *maxiter, *tol)
	case "pcg":
		res = solvers.PCGJacobi(a, b, *maxiter, *tol)
	case "bicgstab":
		res = solvers.BiCGSTAB(a, b, *maxiter, *tol)
	case "gmres":
		res = solvers.GMRES(a, b, 30, *maxiter, *tol)
	default:
		fmt.Fprintf(os.Stderr, "solve: unknown solver %q\n", *solver)
		os.Exit(2)
	}
	rt.Fence()

	last := 0.0
	if len(res.Residuals) > 0 {
		last = res.Residuals[len(res.Residuals)-1]
	}
	fmt.Printf("%s: converged=%v iterations=%d residual=%.3e simulated-time=%v\n",
		*solver, res.Converged, res.Iterations, last, rt.SimTime())
	fmt.Printf("data movement: %v\n", rt.Stats())
	if *profile {
		fmt.Printf("\n%s", rt.Profile())
	}
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "solve: %v\n", res.Err)
		os.Exit(1)
	}
	if !res.Converged {
		os.Exit(1)
	}
}
