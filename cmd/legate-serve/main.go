// Command legate-serve runs the solver service: an HTTP JSON API over a
// pool of warm runtimes with cross-request plan and partition caching,
// fronted by admission control (deadlines, per-tenant quotas, bounded
// queues, circuit breakers) and stopped with a graceful drain.
//
// Usage:
//
//	legate-serve -addr :8080 -pool 2 -procs 4 -kind cpu
//	             [-deadline 0] [-max-queue 256] [-quota RATE[:BURST]]
//	             [-breaker N] [-breaker-cooldown 2s] [-drain 10s]
//	             [-shards N] [-replicas R]
//
// With -shards > 1 the binary runs N in-process engine instances behind
// one scatter/gather coordinator (internal/shard): uploads are
// partitioned into nnz-balanced row blocks placed by consistent hashing
// over content fingerprints, CG/SpMV/power-iteration execute
// distributed with bit-identical results, and -replicas controls how
// many engines can answer for each block when one degrades.
//
// SIGINT/SIGTERM triggers graceful shutdown: the server stops admitting
// (new requests shed 503 "draining"), in-flight requests get up to
// -drain to complete, then the pool is torn down.
//
// See README.md ("legate-serve quickstart" and "sharded serve") for
// curl examples and the full flags table, and ARCHITECTURE.md for how a
// request flows through the engine/transport/shard split.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve/engine"
	"repro/internal/serve/httpapi"
	"repro/internal/shard"
)

// parseQuota parses -quota's RATE[:BURST] form.
func parseQuota(spec string) (float64, int, error) {
	if spec == "" {
		return 0, 0, nil
	}
	rate := spec
	burst := 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		rate = spec[:i]
		b, err := strconv.Atoi(spec[i+1:])
		if err != nil || b <= 0 {
			return 0, 0, fmt.Errorf("bad quota burst in %q", spec)
		}
		burst = b
	}
	r, err := strconv.ParseFloat(rate, 64)
	if err != nil || r < 0 {
		return 0, 0, fmt.Errorf("bad quota rate in %q", spec)
	}
	return r, burst, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		pool        = flag.Int("pool", 2, "warm runtimes in the pool (per shard when -shards > 1)")
		procs       = flag.Int("procs", 4, "processors per pool runtime")
		kind        = flag.String("kind", "cpu", "processor kind: cpu or gpu")
		cacheSize   = flag.Int("cache-size", 8, "bound matrices cached per worker (LRU)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix requests (negative disables batching)")
		seed        = flag.Uint64("seed", 42, "fault-injection seed (also salts retry jitter)")
		faults      = flag.String("faults", "", "fault spec, e.g. 'point@120:1,proc@2:80ms,rate:0.001,lag:0.05:5ms' (see internal/fault)")
		ckptEvery   = flag.Int("checkpoint-every", 64, "launches per checkpoint epoch (-1 disables recovery)")
		profCap     = flag.Int("prof-capacity", 4096, "profiling sink capacity per request class")
		tuneOn      = flag.Bool("tune", true, "feedback-directed mapping: per-binding autotuners (GET /tune reports decisions)")
		deadline    = flag.Duration("deadline", 0, "per-request deadline budget (0 = none; X-Deadline header overrides)")
		maxQueue    = flag.Int("max-queue", 256, "bounded per-worker queue depth; a full queue sheds 503")
		quota       = flag.String("quota", "", "per-tenant admission quota RATE[:BURST] in requests/sec (empty disables)")
		brkN        = flag.Int("breaker", 0, "consecutive degradations that trip a worker's circuit breaker (0 disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "open -> half-open probe delay")
		retries     = flag.Int("retry-budget", 2, "total executions per degraded batch group")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		shards      = flag.Int("shards", 1, "in-process engine shards behind a scatter/gather coordinator (1 = single-process)")
		replicas    = flag.Int("replicas", 2, "engines that can answer for each row block when a shard degrades (capped at -shards)")
	)
	flag.Parse()

	quotaRate, quotaBurst, err := parseQuota(*quota)
	if err != nil {
		fmt.Fprintln(os.Stderr, "legate-serve:", err)
		os.Exit(2)
	}

	ecfg := engine.Config{
		Pool:             *pool,
		Procs:            *procs,
		Kind:             *kind,
		CacheSize:        *cacheSize,
		BatchWindow:      *batchWindow,
		Seed:             *seed,
		Faults:           *faults,
		CheckpointEvery:  *ckptEvery,
		ProfCapacity:     *profCap,
		NoTune:           !*tuneOn,
		Deadline:         *deadline,
		MaxQueue:         *maxQueue,
		QuotaRate:        quotaRate,
		QuotaBurst:       quotaBurst,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCooldown,
		RetryBudget:      *retries,
	}

	// One Backend serves both deployments: the transport only sees the
	// interface, so -shards swaps the engine for a coordinator without
	// touching a single handler.
	var backend engine.Backend
	if *shards > 1 {
		c, err := shard.New(shard.Config{Shards: *shards, Replicas: *replicas, Engine: ecfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "legate-serve:", err)
			os.Exit(1)
		}
		backend = c
	} else {
		e, err := engine.New(ecfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "legate-serve:", err)
			os.Exit(1)
		}
		backend = e
	}

	srv := &http.Server{Addr: *addr, Handler: httpapi.Handler(backend)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("legate-serve: listening on %s (shards=%d pool=%d procs=%d kind=%s cache=%d batch-window=%v deadline=%v max-queue=%d)",
			*addr, *shards, *pool, *procs, *kind, *cacheSize, *batchWindow, *deadline, *maxQueue)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		backend.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: shed new admissions, give in-flight work its
	// drain budget, stop the listener, then tear down the pool(s).
	log.Printf("legate-serve: shutting down (drain budget %v)", *drain)
	clean := backend.Drain(*drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("legate-serve: http shutdown: %v", err)
	}
	backend.Close()
	if clean {
		log.Printf("legate-serve: drained cleanly")
	} else {
		log.Printf("legate-serve: drain budget expired with requests in flight")
	}
}
