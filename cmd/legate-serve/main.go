// Command legate-serve runs the solver service: an HTTP JSON API over a
// pool of warm runtimes with cross-request plan and partition caching,
// fronted by admission control (deadlines, per-tenant quotas, bounded
// queues, circuit breakers) and stopped with a graceful drain.
//
// Usage:
//
//	legate-serve -addr :8080 -pool 2 -procs 4 -kind cpu
//	             [-deadline 0] [-max-queue 256] [-quota RATE[:BURST]]
//	             [-breaker N] [-breaker-cooldown 2s] [-drain 10s]
//
// SIGINT/SIGTERM triggers graceful shutdown: the server stops admitting
// (new requests shed 503 "draining"), in-flight requests get up to
// -drain to complete, then the pool is torn down.
//
// See README.md ("legate-serve quickstart") for curl examples and the
// full flags table, and ARCHITECTURE.md for how a request flows through
// the runtime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// parseQuota parses -quota's RATE[:BURST] form.
func parseQuota(spec string) (float64, int, error) {
	if spec == "" {
		return 0, 0, nil
	}
	rate := spec
	burst := 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		rate = spec[:i]
		b, err := strconv.Atoi(spec[i+1:])
		if err != nil || b <= 0 {
			return 0, 0, fmt.Errorf("bad quota burst in %q", spec)
		}
		burst = b
	}
	r, err := strconv.ParseFloat(rate, 64)
	if err != nil || r < 0 {
		return 0, 0, fmt.Errorf("bad quota rate in %q", spec)
	}
	return r, burst, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		pool        = flag.Int("pool", 2, "warm runtimes in the pool")
		procs       = flag.Int("procs", 4, "processors per pool runtime")
		kind        = flag.String("kind", "cpu", "processor kind: cpu or gpu")
		cacheSize   = flag.Int("cache-size", 8, "bound matrices cached per worker (LRU)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix requests (negative disables batching)")
		seed        = flag.Uint64("seed", 42, "fault-injection seed (also salts retry jitter)")
		faults      = flag.String("faults", "", "fault spec, e.g. 'point@120:1,proc@2:80ms,rate:0.001,lag:0.05:5ms' (see internal/fault)")
		ckptEvery   = flag.Int("checkpoint-every", 64, "launches per checkpoint epoch (-1 disables recovery)")
		profCap     = flag.Int("prof-capacity", 4096, "profiling sink capacity per request class")
		tuneOn      = flag.Bool("tune", true, "feedback-directed mapping: per-binding autotuners (GET /tune reports decisions)")
		deadline    = flag.Duration("deadline", 0, "per-request deadline budget (0 = none; X-Deadline header overrides)")
		maxQueue    = flag.Int("max-queue", 256, "bounded per-worker queue depth; a full queue sheds 503")
		quota       = flag.String("quota", "", "per-tenant admission quota RATE[:BURST] in requests/sec (empty disables)")
		brkN        = flag.Int("breaker", 0, "consecutive degradations that trip a worker's circuit breaker (0 disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "open -> half-open probe delay")
		retries     = flag.Int("retry-budget", 2, "total executions per degraded batch group")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	quotaRate, quotaBurst, err := parseQuota(*quota)
	if err != nil {
		fmt.Fprintln(os.Stderr, "legate-serve:", err)
		os.Exit(2)
	}

	s, err := serve.NewServer(serve.Config{
		Pool:             *pool,
		Procs:            *procs,
		Kind:             *kind,
		CacheSize:        *cacheSize,
		BatchWindow:      *batchWindow,
		Seed:             *seed,
		Faults:           *faults,
		CheckpointEvery:  *ckptEvery,
		ProfCapacity:     *profCap,
		NoTune:           !*tuneOn,
		Deadline:         *deadline,
		MaxQueue:         *maxQueue,
		QuotaRate:        quotaRate,
		QuotaBurst:       quotaBurst,
		BreakerThreshold: *brkN,
		BreakerCooldown:  *brkCooldown,
		RetryBudget:      *retries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "legate-serve:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("legate-serve: listening on %s (pool=%d procs=%d kind=%s cache=%d batch-window=%v deadline=%v max-queue=%d)",
			*addr, *pool, *procs, *kind, *cacheSize, *batchWindow, *deadline, *maxQueue)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		s.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: shed new admissions, give in-flight work its
	// drain budget, stop the listener, then tear down the pool.
	log.Printf("legate-serve: shutting down (drain budget %v)", *drain)
	clean := s.Drain(*drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("legate-serve: http shutdown: %v", err)
	}
	s.Close()
	if clean {
		log.Printf("legate-serve: drained cleanly")
	} else {
		log.Printf("legate-serve: drain budget expired with requests in flight")
	}
}
