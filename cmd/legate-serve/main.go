// Command legate-serve runs the solver service: an HTTP JSON API over a
// pool of warm runtimes with cross-request plan and partition caching.
//
// Usage:
//
//	legate-serve -addr :8080 -pool 2 -procs 4 -kind cpu
//
// See README.md ("legate-serve quickstart") for curl examples and the
// full flags table, and ARCHITECTURE.md for how a request flows through
// the runtime.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		pool        = flag.Int("pool", 2, "warm runtimes in the pool")
		procs       = flag.Int("procs", 4, "processors per pool runtime")
		kind        = flag.String("kind", "cpu", "processor kind: cpu or gpu")
		cacheSize   = flag.Int("cache-size", 8, "bound matrices cached per worker (LRU)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for same-matrix requests (negative disables batching)")
		seed        = flag.Uint64("seed", 42, "fault-injection seed")
		faults      = flag.String("faults", "", "fault spec, e.g. 'point@120:1,proc@2:80ms,rate:0.001' (see internal/fault)")
		ckptEvery   = flag.Int("checkpoint-every", 64, "launches per checkpoint epoch (-1 disables recovery)")
		profCap     = flag.Int("prof-capacity", 4096, "profiling sink capacity per request class")
		tuneOn      = flag.Bool("tune", true, "feedback-directed mapping: per-binding autotuners (GET /tune reports decisions)")
	)
	flag.Parse()

	s, err := serve.NewServer(serve.Config{
		Pool:            *pool,
		Procs:           *procs,
		Kind:            *kind,
		CacheSize:       *cacheSize,
		BatchWindow:     *batchWindow,
		Seed:            *seed,
		Faults:          *faults,
		CheckpointEvery: *ckptEvery,
		ProfCapacity:    *profCap,
		NoTune:          !*tuneOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "legate-serve:", err)
		os.Exit(1)
	}
	defer s.Close()

	log.Printf("legate-serve: listening on %s (pool=%d procs=%d kind=%s cache=%d batch-window=%v)",
		*addr, *pool, *procs, *kind, *cacheSize, *batchWindow)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		log.Fatal(err)
	}
}
