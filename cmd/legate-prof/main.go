// Command legate-prof is the reproduction's Legion Prof / Legion Spy:
// it runs one of the paper's workloads with the observability sink
// attached and exports three artifacts:
//
//	<out>/<preset>.trace.json   Chrome-trace/Perfetto timeline (simulated
//	                            clock; load at ui.perfetto.dev)
//	<out>/<preset>.deps.dot     Graphviz DOT of the dependence DAG with
//	                            span annotations (render with dot -Tsvg)
//	<out>/<preset>.report.txt   critical-path analysis + comms matrix
//	<out>/<preset>.report.json  the same report, machine-readable
//
// The report's speedup bound (total work / critical path) is the best
// any schedule could achieve for the captured run — comparing it
// against the achieved parallelism shows how much headroom fusion,
// tracing, or a better mapping could still claim.
//
// Usage:
//
//	legate-prof -preset cg|gmg|quantum|pagerank [-kind gpu|cpu]
//	            [-procs N] [-units N] [-out DIR] [-fusion=false]
//	            [-capacity N] [-check]
//
// -check self-validates the artifacts (the trace JSON re-parses, spans
// never overlap within one processor timeline, the DOT is well-formed,
// and the report's bounds are mutually consistent); `make prof` uses it
// as a smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/prof"
)

func main() {
	preset := flag.String("preset", "cg", "workload: "+strings.Join(bench.Presets(), ", "))
	kind := flag.String("kind", "gpu", "processor kind: gpu or cpu")
	procs := flag.Int("procs", 4, "simulated processors")
	units := flag.Int64("units", 0, "override units (rows/dimensions) per processor")
	out := flag.String("out", "prof-out", "output directory for artifacts")
	fusion := flag.Bool("fusion", true, "enable the runtime's task-fusion window")
	capacity := flag.Int("capacity", 0, "sink ring capacity per event stream (0 = default)")
	check := flag.Bool("check", false, "self-validate the artifacts and exit non-zero on failure")
	flag.Parse()

	if !*fusion {
		legion.SetDefaultFusionWindow(0)
	}
	var k machine.ProcKind
	switch *kind {
	case "gpu":
		k = machine.GPU
	case "cpu":
		k = machine.CPU
	default:
		fatalf("unknown -kind %q (gpu or cpu)", *kind)
	}

	opt := bench.SmallOptions()
	if *units > 0 {
		opt.UnitsPerProc = *units
	}
	sink := prof.NewSink(*capacity)
	if err := bench.RunPreset(*preset, k, *procs, opt, sink); err != nil {
		fatalf("preset %q: %v", *preset, err)
	}
	t := sink.Snapshot()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	tracePath := filepath.Join(*out, *preset+".trace.json")
	dotPath := filepath.Join(*out, *preset+".deps.dot")
	txtPath := filepath.Join(*out, *preset+".report.txt")
	jsonPath := filepath.Join(*out, *preset+".report.json")

	writeArtifact(tracePath, t.WriteChromeTrace)
	writeArtifact(dotPath, t.WriteDOT)
	rep := t.BuildReport()
	writeArtifact(jsonPath, rep.WriteJSON)
	if err := os.WriteFile(txtPath, []byte(rep.String()), 0o644); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("preset %s on %d %s procs: %d spans, %d launches, %d deps, %d copies\n",
		*preset, *procs, *kind, len(t.Spans), len(t.Launches), len(t.Deps), len(t.Copies))
	fmt.Print(rep.String())
	fmt.Printf("artifacts: %s %s %s %s\n", tracePath, dotPath, txtPath, jsonPath)

	if *check {
		if err := validate(t, rep, tracePath, dotPath); err != nil {
			fatalf("check failed: %v", err)
		}
		fmt.Println("check: ok")
	}
}

// validate is the smoke-test contract: artifacts parse, the timeline
// invariant holds, and the report's bounds are internally consistent.
func validate(t *prof.Trace, rep *prof.Report, tracePath, dotPath string) error {
	if len(t.Spans) == 0 || len(t.Launches) == 0 || len(t.Deps) == 0 {
		return fmt.Errorf("empty trace: %d spans, %d launches, %d deps",
			len(t.Spans), len(t.Launches), len(t.Deps))
	}
	if err := t.CheckSpans(); err != nil {
		return err
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return fmt.Errorf("trace JSON does not parse: %w", err)
	}
	if len(parsed.TraceEvents) == 0 {
		return fmt.Errorf("trace JSON has no events")
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		return err
	}
	if !strings.Contains(string(dot), "digraph") || !strings.Contains(string(dot), "->") {
		return fmt.Errorf("DOT output missing digraph structure")
	}
	for _, rr := range rep.Runs {
		if rr.CriticalPath > rr.Makespan {
			return fmt.Errorf("run %d: critical path %v exceeds makespan %v",
				rr.Run, rr.CriticalPath, rr.Makespan)
		}
		if rr.SpeedupBound+1e-9 < rr.Parallelism {
			return fmt.Errorf("run %d: speedup bound %.3f below achieved parallelism %.3f",
				rr.Run, rr.SpeedupBound, rr.Parallelism)
		}
	}
	return nil
}

func writeArtifact(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "legate-prof: "+format+"\n", args...)
	os.Exit(1)
}
