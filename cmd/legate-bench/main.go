// Command legate-bench runs the paper-reproduction experiments: the
// weak-scaling figures (SpMV, CG, GMG, quantum) and the matrix
// factorization table of Legate Sparse's evaluation (§6).
//
// Usage:
//
//	legate-bench -exp spmv|cg|gmg|quantum|mf|all [-preset small|paper]
//	             [-units N] [-iters N] [-runs N] [-mfscale N]
//
// Each experiment prints the same rows/series the paper's figure or
// table reports, measured in simulated time on the synthetic machine
// model (see DESIGN.md for the calibration).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/legion"
)

func main() {
	exp := flag.String("exp", "all", "experiment: spmv, cg, gmg, quantum, mf, ablation, or all")
	preset := flag.String("preset", "small", "option preset: small or paper")
	units := flag.Int64("units", 0, "override units (rows/dimensions) per processor")
	iters := flag.Int("iters", 0, "override timed iterations per run")
	runs := flag.Int("runs", 0, "override repetitions per configuration")
	mfscale := flag.Int64("mfscale", 0, "override MovieLens dataset scale divisor")
	fusion := flag.Bool("fusion", true, "enable the runtime's task-fusion window")
	flag.Parse()

	if !*fusion {
		legion.SetDefaultFusionWindow(0)
	}

	var opt bench.Options
	switch *preset {
	case "small":
		opt = bench.SmallOptions()
	case "paper":
		opt = bench.PaperOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *units > 0 {
		opt.UnitsPerProc = *units
	}
	if *iters > 0 {
		opt.Iters = *iters
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *mfscale > 0 {
		opt.MFScale = *mfscale
	}

	run := func(name string, fig func(bench.Options) *bench.Figure) {
		t0 := time.Now()
		f := fig(opt)
		fmt.Printf("%s\n(generated in %v)\n\n", f.FormatFigure(), time.Since(t0).Round(time.Millisecond))
	}
	runMF := func() {
		t0 := time.Now()
		tab := bench.Fig12MF(opt)
		fmt.Printf("%s\n(generated in %v)\n\n", tab.FormatTable(), time.Since(t0).Round(time.Millisecond))
	}

	runAblations := func() {
		for _, ab := range []func(bench.Options) bench.AblationResult{
			bench.AblationCoalescing,
			bench.AblationTracing,
			bench.AblationFusion,
			bench.AblationAnalysisScaling,
		} {
			t0 := time.Now()
			res := ab(opt)
			fmt.Printf("%s\n  %s\n  with: %.3f   without: %.3f\n(generated in %v)\n\n",
				res.Name, res.Metric, res.With, res.Without, time.Since(t0).Round(time.Millisecond))
		}
	}

	switch *exp {
	case "spmv":
		run("fig8", bench.Fig8SpMV)
	case "cg":
		run("fig9", bench.Fig9CG)
	case "gmg":
		run("fig10", bench.Fig10GMG)
	case "quantum":
		run("fig11", bench.Fig11Quantum)
	case "mf":
		runMF()
	case "ablation":
		runAblations()
	case "all":
		run("fig8", bench.Fig8SpMV)
		run("fig9", bench.Fig9CG)
		run("fig10", bench.Fig10GMG)
		run("fig11", bench.Fig11Quantum)
		runMF()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
