// Command legate-bench runs the paper-reproduction experiments: the
// weak-scaling figures (SpMV, CG, GMG, quantum) and the matrix
// factorization table of Legate Sparse's evaluation (§6).
//
// Usage:
//
//	legate-bench -exp spmv|cg|gmg|quantum|mf|recovery|tune|serve|shard|all [-preset small|paper]
//	             [-units N] [-iters N] [-runs N] [-mfscale N]
//	             [-seed N] [-faults SPEC] [-checkpoint-every N]
//	             [-tune] [-tune-presets LIST] [-json PATH] [-commit ID]
//
// -exp recovery runs the fault-tolerance experiments: the fault-free
// checkpointing overhead, a faulted run verified bit-identical to the
// baseline, and the MTBF sweep (see internal/fault.Parse for the
// -faults schedule syntax).
//
// -exp tune runs the feedback-directed mapping ablation: each preset's
// steady-state wall-clock throughput with the autotuner attached vs the
// static mapper, optionally written as JSON records with -json (see
// `make bench-json`).
//
// Each experiment prints the same rows/series the paper's figure or
// table reports, measured in simulated time on the synthetic machine
// model (see DESIGN.md for the calibration).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/legion"
	"repro/internal/prof"
	"repro/internal/tune"
)

func main() {
	exp := flag.String("exp", "all", "experiment: spmv, cg, gmg, quantum, mf, ablation, recovery, serve, shard, or all")
	preset := flag.String("preset", "small", "option preset: small or paper")
	units := flag.Int64("units", 0, "override units (rows/dimensions) per processor")
	iters := flag.Int("iters", 0, "override timed iterations per run")
	runs := flag.Int("runs", 0, "override repetitions per configuration")
	mfscale := flag.Int64("mfscale", 0, "override MovieLens dataset scale divisor")
	fusion := flag.Bool("fusion", true, "enable the runtime's task-fusion window")
	seed := flag.Uint64("seed", 42, "seed for workload generators and the fault injector")
	faults := flag.String("faults", "", "fault schedule for -exp recovery (e.g. point@40:2,proc@1:500us,rate:0.001:3)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint interval in launches for -exp recovery (0 = default)")
	profOut := flag.String("prof-out", "", "directory to write observability artifacts (Chrome trace, DOT dependence graph, critical-path report) covering every runtime the experiments create")
	tuneOn := flag.Bool("tune", false, "attach the feedback-directed autotuner to every runtime the experiments create")
	tunePresets := flag.String("tune-presets", "", "comma-separated preset filter for -exp tune (default: all of cg,gmg,quantum,pagerank)")
	jsonOut := flag.String("json", "", "write -exp tune/serve results as machine-readable JSON records to this path")
	commit := flag.String("commit", "", "commit id recorded in -json output")
	flag.Parse()

	if !*fusion {
		legion.SetDefaultFusionWindow(0)
	}
	if *tuneOn {
		tune.SetAutoTune(true)
	}
	var sink *prof.Sink
	if *profOut != "" {
		// Every runtime the bench package creates attaches to this sink;
		// the artifacts separate them by run index (one Chrome-trace
		// process / DOT cluster / report section per runtime).
		sink = prof.NewSink(0)
		legion.SetDefaultProfiler(sink)
		defer writeProfArtifacts(sink, *profOut)
	}

	var opt bench.Options
	switch *preset {
	case "small":
		opt = bench.SmallOptions()
	case "paper":
		opt = bench.PaperOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *units > 0 {
		opt.UnitsPerProc = *units
	}
	if *iters > 0 {
		opt.Iters = *iters
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *mfscale > 0 {
		opt.MFScale = *mfscale
	}
	opt.Seed = *seed
	opt.FaultSpec = *faults
	opt.CheckpointEvery = *ckptEvery

	run := func(name string, fig func(bench.Options) *bench.Figure) {
		t0 := time.Now()
		f := fig(opt)
		fmt.Printf("%s\n(generated in %v)\n\n", f.FormatFigure(), time.Since(t0).Round(time.Millisecond))
	}
	runMF := func() {
		t0 := time.Now()
		tab := bench.Fig12MF(opt)
		fmt.Printf("%s\n(generated in %v)\n\n", tab.FormatTable(), time.Since(t0).Round(time.Millisecond))
	}

	runAblation := func(ab func(bench.Options) bench.AblationResult) {
		t0 := time.Now()
		res := ab(opt)
		fmt.Printf("%s\n  %s\n  with: %.3f   without: %.3f\n(generated in %v)\n\n",
			res.Name, res.Metric, res.With, res.Without, time.Since(t0).Round(time.Millisecond))
	}
	runAblations := func() {
		for _, ab := range []func(bench.Options) bench.AblationResult{
			bench.AblationCoalescing,
			bench.AblationTracing,
			bench.AblationFusion,
			bench.AblationAnalysisScaling,
			bench.AblationRecovery,
			bench.AblationRecoveryFaulted,
		} {
			runAblation(ab)
		}
	}
	runRecovery := func() {
		runAblation(bench.AblationRecovery)
		runAblation(bench.AblationRecoveryFaulted)
		run("fig-recovery", bench.FigRecovery)
	}
	runTune := func() {
		presets := bench.Presets()
		if *tunePresets != "" {
			presets = strings.Split(*tunePresets, ",")
		}
		var records []benchRecord
		for _, p := range presets {
			t0 := time.Now()
			res, err := bench.AblationTune(opt, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tune %s: %v\n", p, err)
				os.Exit(1)
			}
			speedup := 0.0
			if res.Without > 0 {
				speedup = res.With / res.Without
			}
			fmt.Printf("%s\n  %s\n  tuned: %.3f   static: %.3f   speedup: %.3fx\n(generated in %v)\n\n",
				res.Name, res.Metric, res.With, res.Without, speedup, time.Since(t0).Round(time.Millisecond))
			records = append(records,
				benchRecord{Preset: p, Metric: "tuned_steps_per_wall_sec", Value: res.With, Commit: *commit},
				benchRecord{Preset: p, Metric: "static_steps_per_wall_sec", Value: res.Without, Commit: *commit},
				benchRecord{Preset: p, Metric: "tuned_speedup", Value: speedup, Commit: *commit},
			)
		}
		if *jsonOut != "" {
			if err := writeBenchJSON(*jsonOut, records); err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d records -> %s\n", len(records), *jsonOut)
		}
	}

	switch *exp {
	case "spmv":
		run("fig8", bench.Fig8SpMV)
	case "cg":
		run("fig9", bench.Fig9CG)
	case "gmg":
		run("fig10", bench.Fig10GMG)
	case "quantum":
		run("fig11", bench.Fig11Quantum)
	case "mf":
		runMF()
	case "ablation":
		runAblations()
	case "recovery":
		runRecovery()
	case "tune":
		runTune()
	case "serve":
		t0 := time.Now()
		results := bench.ServeLoad(opt)
		fmt.Printf("%s(generated in %v)\n\n", bench.FormatServeLoad(results), time.Since(t0).Round(time.Millisecond))
		if *jsonOut != "" {
			var records []benchRecord
			for _, r := range results {
				records = append(records,
					benchRecord{Preset: r.Name, Metric: "throughput_req_per_sec", Value: r.Throughput, Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "p50_latency_ms", Value: float64(r.P50Lat) / float64(time.Millisecond), Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "p99_latency_ms", Value: float64(r.P99Lat) / float64(time.Millisecond), Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "shed_rate", Value: r.ShedRate, Commit: *commit},
				)
			}
			if err := writeBenchJSON(*jsonOut, records); err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d records -> %s\n", len(records), *jsonOut)
		}
	case "shard":
		t0 := time.Now()
		results := bench.ShardedServeLoad(opt)
		fmt.Printf("%s(generated in %v)\n\n", bench.FormatShardLoad(results), time.Since(t0).Round(time.Millisecond))
		if *jsonOut != "" {
			var records []benchRecord
			for _, r := range results {
				records = append(records,
					benchRecord{Preset: r.Name, Metric: "throughput_req_per_sec", Value: r.Throughput, Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "p50_latency_ms", Value: float64(r.P50Lat) / float64(time.Millisecond), Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "p99_latency_ms", Value: float64(r.P99Lat) / float64(time.Millisecond), Commit: *commit},
					benchRecord{Preset: r.Name, Metric: "comms_kib", Value: float64(r.CommsBytes) / 1024, Commit: *commit},
				)
			}
			if err := writeBenchJSON(*jsonOut, records); err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d records -> %s\n", len(records), *jsonOut)
		}
	case "all":
		run("fig8", bench.Fig8SpMV)
		run("fig9", bench.Fig9CG)
		run("fig10", bench.Fig10GMG)
		run("fig11", bench.Fig11Quantum)
		runMF()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// benchRecord is one machine-readable measurement (BENCH_pr6.json).
type benchRecord struct {
	Preset string  `json:"preset"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Commit string  `json:"commit,omitempty"`
}

func writeBenchJSON(path string, records []benchRecord) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// writeProfArtifacts snapshots the sink and writes the three exporter
// artifacts under dir.
func writeProfArtifacts(sink *prof.Sink, dir string) {
	legion.SetDefaultProfiler(nil)
	t := sink.Snapshot()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "prof-out: %v\n", err)
		return
	}
	write := func(name string, f func(io.Writer) error) {
		path := filepath.Join(dir, name)
		out, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prof-out: %v\n", err)
			return
		}
		defer out.Close()
		if err := f(out); err != nil {
			fmt.Fprintf(os.Stderr, "prof-out: writing %s: %v\n", path, err)
		}
	}
	write("bench.trace.json", t.WriteChromeTrace)
	write("bench.deps.dot", t.WriteDOT)
	rep := t.BuildReport()
	write("bench.report.json", rep.WriteJSON)
	write("bench.report.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, rep.String())
		return err
	})
	fmt.Printf("prof-out: %d runs, %d spans, %d launches -> %s\n",
		len(rep.Runs), len(t.Spans), len(t.Launches), dir)
}
