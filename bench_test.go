package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/distal"
	"repro/internal/geometry"
	"repro/internal/legion"
	"repro/internal/machine"
)

// benchOptions is a reduced sweep so `go test -bench=.` completes in
// minutes; use cmd/legate-bench or cmd/figures for the full ladders.
func benchOptions() bench.Options {
	opt := bench.SmallOptions()
	opt.GPUCounts = []int{1, 3, 6}
	opt.CPUCounts = []int{1, 2, 4}
	opt.Runs = 1
	opt.Iters = 3
	return opt
}

// BenchmarkFig8SpMV regenerates the SpMV microbenchmark weak-scaling
// figure (paper Figure 8).
func BenchmarkFig8SpMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig8SpMV(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig9CG regenerates the conjugate gradient weak-scaling
// figure (paper Figure 9).
func BenchmarkFig9CG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig9CG(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig10GMG regenerates the geometric multigrid weak-scaling
// figure (paper Figure 10).
func BenchmarkFig10GMG(b *testing.B) {
	opt := benchOptions()
	opt.UnitsPerProc = 1 << 10 // the GMG driver multiplies units by 8
	for i := 0; i < b.N; i++ {
		fig := bench.Fig10GMG(opt)
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig11Quantum regenerates the quantum simulation weak-scaling
// figure (paper Figure 11).
func BenchmarkFig11Quantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig11Quantum(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig12MF regenerates the sparse matrix factorization table
// (paper Figure 12).
func BenchmarkFig12MF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := bench.Fig12MF(benchOptions())
		if i == 0 {
			b.Log("\n" + tab.FormatTable())
		}
	}
}

// BenchmarkTune runs every profiling preset with the static mapper and
// with the feedback-directed autotuner attached (internal/tune) — the
// static-vs-tuned wall-clock comparison behind `legate-bench -exp tune`
// and BENCH_pr6.json. Results are bit-identical across the two arms;
// only the schedules (kernel variants, fusion window, distribution)
// differ.
func BenchmarkTune(b *testing.B) {
	for _, preset := range bench.Presets() {
		for _, tuned := range []bool{false, true} {
			arm := "static"
			if tuned {
				arm = "tuned"
			}
			b.Run(preset+"/"+arm, func(b *testing.B) {
				opt := benchOptions()
				opt.Tune = tuned
				for i := 0; i < b.N; i++ {
					if err := bench.RunPreset(preset, machine.CPU, 4, opt, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchFormatRT builds the runtime used by the per-format grid: four
// GPU-variety processors of one Summit node, the same configuration the
// figure benchmarks default to.
func benchFormatRT(b *testing.B) *legion.Runtime {
	b.Helper()
	m := machine.Summit(1)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, 4))
	b.Cleanup(rt.Shutdown)
	return rt
}

// benchFormats converts the 2-D Poisson operator (a realistic banded
// matrix every format stores well) into each supported format. The grid
// edge is even so ToBSR does not pad.
func benchFormats(rt *legion.Runtime, nx int64) map[string]core.SparseMatrix {
	a := core.Poisson2D(rt, nx)
	return map[string]core.SparseMatrix{
		"csr":  a,
		"csc":  a.ToCSC(),
		"coo":  a.ToCOO(),
		"dia":  a.ToDIA(),
		"bsr2": a.ToBSR(2),
	}
}

// BenchmarkFormatSpMV times y = A @ x dispatched through the generic
// launch planner for every format. Compare against
// BenchmarkFormatDirectKernel to see what the planner and runtime add
// on top of the raw compiled kernel.
func BenchmarkFormatSpMV(b *testing.B) {
	rt := benchFormatRT(b)
	nx := int64(64)
	n := nx * nx
	x := cunumeric.FromSlice(rt, make([]float64, n))
	x.Fill(1)
	y := cunumeric.Zeros(rt, n)
	for name, m := range benchFormats(rt, nx) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.SpMVInto(y, x)
			}
			rt.Fence()
			b.SetBytes(m.NNZ() * 8)
		})
	}
}

// BenchmarkFormatDirectKernel times the compiled CSR SpMV kernel
// executed directly on host slices — no tasks, no partitioning, no
// planner. The delta between this and BenchmarkFormatSpMV/csr is the
// dispatch overhead the format-generic planner costs per launch.
func BenchmarkFormatDirectKernel(b *testing.B) {
	rt := benchFormatRT(b)
	nx := int64(64)
	n := nx * nx
	a := core.Poisson2D(rt, nx)
	rt.Fence()
	h := a.ExportHost()
	pos := make([]geometry.Rect, n)
	for i := int64(0); i < n; i++ {
		pos[i] = geometry.NewRect(h.Indptr[i], h.Indptr[i+1]-1)
	}
	args := &distal.Args{
		Ops: map[string]*distal.Operand{
			"y": {Vals: make([]float64, n)},
			"A": {Pos: pos, Crd: h.Indices, Vals: h.Data},
			"x": {Vals: make([]float64, n)},
		},
		Lo: 0, Hi: n - 1,
	}
	for i := range args.Ops["x"].Vals {
		args.Ops["x"].Vals[i] = 1
	}
	k := distal.Standard.MustLookup("spmv", distal.CSR, distal.CPUThread)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(args)
	}
	b.SetBytes(a.NNZ() * 8)
}

// BenchmarkFormatSpMM times Y = A @ X (16 dense columns) through the
// generic entry point. Formats without a compiled SpMM variant pay a
// per-call CSR conversion, and the grid makes that cost visible instead
// of hiding it.
func BenchmarkFormatSpMM(b *testing.B) {
	rt := benchFormatRT(b)
	nx := int64(32)
	n := nx * nx
	x := cunumeric.RandomMatrix(rt, n, 16, 7, 1)
	for name, m := range benchFormats(rt, nx) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				y := core.SpMM(m, x)
				y.Destroy()
			}
			rt.Fence()
		})
	}
}
