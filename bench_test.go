package repro_test

import (
	"testing"

	"repro/internal/bench"
)

// benchOptions is a reduced sweep so `go test -bench=.` completes in
// minutes; use cmd/legate-bench or cmd/figures for the full ladders.
func benchOptions() bench.Options {
	opt := bench.SmallOptions()
	opt.GPUCounts = []int{1, 3, 6}
	opt.CPUCounts = []int{1, 2, 4}
	opt.Runs = 1
	opt.Iters = 3
	return opt
}

// BenchmarkFig8SpMV regenerates the SpMV microbenchmark weak-scaling
// figure (paper Figure 8).
func BenchmarkFig8SpMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig8SpMV(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig9CG regenerates the conjugate gradient weak-scaling
// figure (paper Figure 9).
func BenchmarkFig9CG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig9CG(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig10GMG regenerates the geometric multigrid weak-scaling
// figure (paper Figure 10).
func BenchmarkFig10GMG(b *testing.B) {
	opt := benchOptions()
	opt.UnitsPerProc = 1 << 10 // the GMG driver multiplies units by 8
	for i := 0; i < b.N; i++ {
		fig := bench.Fig10GMG(opt)
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig11Quantum regenerates the quantum simulation weak-scaling
// figure (paper Figure 11).
func BenchmarkFig11Quantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.Fig11Quantum(benchOptions())
		if i == 0 {
			b.Log("\n" + fig.FormatFigure())
		}
	}
}

// BenchmarkFig12MF regenerates the sparse matrix factorization table
// (paper Figure 12).
func BenchmarkFig12MF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := bench.Fig12MF(benchOptions())
		if i == 0 {
			b.Log("\n" + tab.FormatTable())
		}
	}
}
