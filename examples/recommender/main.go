// Recommender trains the paper's sparse machine-learning workload
// (Figure 12): matrix factorization with bias optimized by mini-batch
// SGD, with the SDDMM operation avoiding materialization of dense
// products. The dataset is a synthetic MovieLens-shaped power-law
// ratings matrix.
package main

import (
	"flag"
	"fmt"

	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/mlearn"
)

func main() {
	users := flag.Int64("users", 2000, "users")
	items := flag.Int64("items", 600, "items")
	ratings := flag.Int64("ratings", 40000, "rating samples")
	epochs := flag.Int("epochs", 10, "training epochs")
	rank := flag.Int64("rank", 16, "latent dimension")
	gpus := flag.Int("gpus", 3, "simulated GPUs")
	flag.Parse()

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	ds := mlearn.Synthetic("synthetic", *users, *items, *ratings, 11)
	fmt.Println(ds)

	cfg := mlearn.DefaultConfig()
	cfg.Rank = *rank
	model := mlearn.NewModel(rt, ds, cfg)
	defer model.Destroy()

	fmt.Printf("initial RMSE: %.4f\n", model.RMSE(0))
	for e := 0; e < *epochs; e++ {
		rt.Fence()
		rt.ResetMetrics()
		loss, samples := model.Epoch(e)
		rt.Fence()
		if err := rt.Err(); err != nil {
			fmt.Printf("epoch %d failed: %v\n", e, err)
			return
		}
		rate := float64(samples) / rt.SimTime().Seconds()
		fmt.Printf("epoch %2d: loss=%.4f  samples/sec=%.0f (simulated)\n", e, loss, rate)
	}
	fmt.Printf("final RMSE: %.4f  (global bias μ=%.3f)\n", model.RMSE(0), model.Mu)
}
