// Poisson solves the 2-D Poisson problem -∇²u = f on an nx x nx grid
// with the conjugate gradient method — the workload of the paper's
// Figure 9 — and cross-checks the Krylov solver family (CG, CGS, BiCG,
// BiCGSTAB, GMRES) on the same system.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/solvers"
)

func main() {
	nx := flag.Int64("nx", 64, "grid edge (nx*nx unknowns)")
	gpus := flag.Int("gpus", 6, "simulated GPUs")
	tol := flag.Float64("tol", 1e-8, "residual tolerance")
	profile := flag.Bool("profile", false, "print the per-task runtime profile")
	flag.Parse()

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	a := core.Poisson2D(rt, *nx)
	n := *nx * *nx
	b := cunumeric.Full(rt, n, 1)
	fmt.Printf("system: %v (%d unknowns) on %d GPUs\n", a, n, *gpus)

	type entry struct {
		name string
		run  func() *solvers.Result
	}
	for _, s := range []entry{
		{"CG", func() *solvers.Result { return solvers.CG(a, b, 2000, *tol) }},
		{"CGS", func() *solvers.Result { return solvers.CGS(a, b, 2000, *tol) }},
		{"BiCG", func() *solvers.Result { return solvers.BiCG(a, b, 2000, *tol) }},
		{"BiCGSTAB", func() *solvers.Result { return solvers.BiCGSTAB(a, b, 2000, *tol) }},
		{"GMRES(30)", func() *solvers.Result { return solvers.GMRES(a, b, 30, 2000, *tol) }},
	} {
		rt.Fence()
		rt.ResetMetrics()
		res := s.run()
		rt.Fence()
		last := 0.0
		if len(res.Residuals) > 0 {
			last = res.Residuals[len(res.Residuals)-1]
		}
		fmt.Printf("%-10s converged=%-5v iters=%-5d residual=%.3e simtime=%v\n",
			s.name, res.Converged, res.Iterations, last, rt.SimTime())
		res.X.Destroy()
	}
	if *profile {
		fmt.Printf("\nper-task profile (all solvers):\n%s", rt.Profile())
	}
}
