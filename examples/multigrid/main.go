// Multigrid runs the paper's geometric multigrid benchmark (Figure 10):
// a two-level GMG-preconditioned conjugate gradient solver for the 2-D
// Poisson problem, using injection restriction and a weighted Jacobi
// smoother, and compares its iteration count against unpreconditioned
// CG.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/solvers"
)

func main() {
	nx := flag.Int64("nx", 128, "grid edge (must be even)")
	gpus := flag.Int("gpus", 6, "simulated GPUs")
	flag.Parse()
	if *nx%2 != 0 {
		*nx++
	}

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	a := core.Poisson2D(rt, *nx)
	b := cunumeric.Full(rt, *nx**nx, 1)
	fmt.Printf("fine system: %v on %d GPUs\n", a, *gpus)

	mg := solvers.NewMultigrid(a, *nx)
	defer mg.Destroy()
	fmt.Printf("coarse system: %v (Galerkin R·A·P, injection restriction)\n", mg.Ac)

	rt.ResetMetrics()
	pcg := mg.PCG(b, 500, 1e-8)
	rt.Fence()
	fmt.Printf("MG-PCG: converged=%v iters=%d simtime=%v\n", pcg.Converged, pcg.Iterations, rt.SimTime())

	rt.ResetMetrics()
	plain := solvers.CG(a, b, 5000, 1e-8)
	rt.Fence()
	fmt.Printf("CG:     converged=%v iters=%d simtime=%v\n", plain.Converged, plain.Iterations, rt.SimTime())

	fmt.Printf("\nresidual history (first 10 MG-PCG iterations):\n")
	for i, r := range pcg.Residuals {
		if i >= 10 {
			break
		}
		fmt.Printf("  iter %2d: %.3e\n", i+1, r)
	}
}
