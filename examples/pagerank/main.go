// Pagerank ranks the nodes of a synthetic scale-free web graph with the
// power method — the classic sparse iterative workload, written exactly
// as the SciPy idiom:
//
//	r = (1-d)/n + d * (Aᵀ D⁻¹) @ r
//
// where A is the adjacency matrix, D the out-degree diagonal, and d the
// damping factor. The column-stochastic transition matrix is assembled
// with the library's transpose, row-sum, and scaling operations; each
// iteration is one distributed SpMV plus vector ops.
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
)

func main() {
	nodes := flag.Int64("nodes", 2000, "graph nodes")
	edgesPerNode := flag.Int64("edges", 8, "average out-edges per node")
	damping := flag.Float64("damping", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-10, "L2 convergence tolerance")
	gpus := flag.Int("gpus", 6, "simulated GPUs")
	flag.Parse()

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	// Synthetic scale-free-ish graph: edge targets biased toward
	// low-numbered (popular) nodes, deterministic in the seed.
	n := *nodes
	var r, c []int64
	var v []float64
	for i := int64(0); i < n; i++ {
		for e := int64(0); e < *edgesPerNode; e++ {
			u := cunumeric.Uniform01(7, uint64(i**edgesPerNode+e))
			j := int64(u * u * float64(n))
			if j >= n {
				j = n - 1
			}
			if j == i {
				continue
			}
			r = append(r, i)
			c = append(c, j)
			v = append(v, 1)
		}
	}
	adj := core.NewCOO(rt, n, n, r, c, v).ToCSR()
	fmt.Printf("graph: %v on %d GPUs\n", adj, *gpus)

	// Column-stochastic transition matrix M = Aᵀ D⁻¹: divide each row of
	// A by its out-degree (via SDDMM-free composition: scale rows through
	// the values array using a gather of 1/degree), then transpose.
	deg := adj.SumAxis1()
	inv := cunumeric.Zeros(rt, n)
	cunumeric.RecipClamp(inv, deg)
	scaled := adj.Copy()
	// row-scale: vals[k] *= inv[row(k)]; expressed with a gather of the
	// per-row factor onto the nonzero layout via the COO row index.
	coo := scaled.ToCOO()
	factors := cunumeric.Zeros(rt, coo.NNZ())
	cunumeric.Gather(factors, coo.Row(), inv)
	cunumeric.MulInto(cunumeric.FromRegion(coo.Vals()), cunumeric.FromRegion(coo.Vals()), factors)
	mt := coo.ToCSR().Transpose()

	// Power method.
	rank := cunumeric.Full(rt, n, 1/float64(n))
	next := cunumeric.Zeros(rt, n)
	teleport := (1 - *damping) / float64(n)
	var iters int
	for iters = 1; iters <= 200; iters++ {
		mt.SpMVInto(next, rank)
		next.Scale(*damping)
		next.AddScalar(teleport)
		// Dangling-node mass: renormalize to sum 1.
		s := cunumeric.Sum(next).Get()
		next.Scale(1 / s)
		cunumeric.AXPY(-1, next, rank) // rank = old - new
		delta := cunumeric.Norm(rank)
		cunumeric.Copy(rank, next)
		if delta < *tol {
			break
		}
	}
	rt.Fence()

	scores := rank.ToSlice()
	type nodeScore struct {
		node  int64
		score float64
	}
	top := make([]nodeScore, n)
	for i := range scores {
		top[i] = nodeScore{node: int64(i), score: scores[i]}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].score > top[b].score })

	fmt.Printf("converged in %d iterations (simulated time %v)\n", iters, rt.SimTime())
	fmt.Println("top 5 nodes:")
	for _, ns := range top[:5] {
		fmt.Printf("  node %5d  score %.6f\n", ns.node, ns.score)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	fmt.Printf("rank mass: %.9f (should be 1)\n", sum)
	if math.Abs(sum-1) > 1e-6 {
		fmt.Println("WARNING: rank mass drifted")
	}
}
