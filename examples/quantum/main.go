// Quantum simulates a chain of Rydberg atoms under the blockade
// constraint (the paper's Figure 11 workload): the blockade-restricted
// basis shrinks the Hilbert space from 2^n to Fibonacci(n+2) states, the
// sparse Hamiltonian couples adjacent excitation manifolds, and the wave
// function evolves under an 8th-order Runge-Kutta integrator. The run
// reports unitarity (norm preservation) and the mean Rydberg occupation
// over time.
package main

import (
	"flag"
	"fmt"

	"repro/internal/legion"
	"repro/internal/machine"
	"repro/internal/quantum"
)

func main() {
	atoms := flag.Int("atoms", 16, "atoms in the chain")
	omega := flag.Float64("omega", 2.0, "Rabi frequency")
	delta := flag.Float64("delta", 1.0, "laser detuning")
	dt := flag.Float64("dt", 0.01, "time step")
	steps := flag.Int("steps", 100, "RK8 steps")
	gpus := flag.Int("gpus", 4, "simulated GPUs (4 per node, as in the paper)")
	mis := flag.Bool("mis", false, "run the adiabatic Maximum-Independent-Set sweep instead")
	flag.Parse()

	m := machine.New(machine.Config{Nodes: (*gpus + 3) / 4, SocketsPerNode: 2, GPUsPerSocket: 2})
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	if *mis {
		runMIS(rt, *atoms, *omega)
		return
	}

	sys := quantum.NewSystem(rt, quantum.Chain{Atoms: *atoms, Omega: *omega, Delta: *delta})
	defer sys.Destroy()
	fmt.Printf("chain of %d atoms: %d blockade states (vs 2^%d = %d unrestricted), H nnz = %d\n",
		*atoms, sys.Dim(), *atoms, int64(1)<<*atoms, sys.H.NNZ())

	rk := sys.NewIntegrator()
	defer rk.Destroy()

	report := *steps / 10
	if report == 0 {
		report = 1
	}
	for s := 0; s < *steps; s += report {
		n := report
		if s+n > *steps {
			n = *steps - s
		}
		sys.Evolve(rk, *dt, n)
		fmt.Printf("t=%6.3f  ⟨n⟩=%.4f  |ψ|²=%.12f  P(ground)=%.4f\n",
			float64(s+n)**dt, sys.MeanRydberg(), sys.NormSquared(), sys.GroundStateProbability())
	}
	rt.Fence()
	fmt.Printf("\nsimulated time for %d RK8 steps on %d GPUs: %v\n", *steps, *gpus, rt.SimTime())
	fmt.Printf("runtime stats: %v\n", rt.Stats())
}

// runMIS executes the adiabatic Maximum-Independent-Set protocol the
// Rydberg platform is used for: sweep the detuning from strongly
// negative to strongly positive and measure the probability of landing
// in the MIS manifold.
func runMIS(rt *legion.Runtime, atoms int, omega float64) {
	fmt.Printf("adiabatic MIS sweep on a %d-atom chain (path-graph MIS size %d)\n",
		atoms, (atoms+1)/2)
	for _, T := range []float64{2, 8, 30} {
		sw := quantum.NewSweep(rt, atoms, omega, 6, 6, T)
		sw.Run(int(T * 50))
		fmt.Printf("  sweep duration %5.1f: P(MIS manifold) = %.4f  (|ψ|² = %.9f)\n",
			T, sw.MISProbability(), sw.NormSquared())
		sw.Destroy()
	}
}
