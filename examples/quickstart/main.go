// Quickstart reproduces the paper's Figure 1 program: build a random
// sparse positive semi-definite matrix and estimate its maximum
// eigenvalue by power iteration with the Rayleigh quotient. The Python
// original:
//
//	A = sp.random(n, n, format='csr')
//	A = 0.5 * (A + A.T) + n * sp.eye(n)
//	x = np.random.rand(A.shape[0])
//	for _ in range(iters):
//	    x = A @ x
//	    x /= np.linalg.norm(x)
//	result = np.dot(x.T, A @ x)
//
// Every array operation here is a distributed task on the simulated
// machine; run with -gpus to change the processor count and observe
// that the result is identical (partitioning never changes values).
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/cunumeric"
	"repro/internal/legion"
	"repro/internal/machine"
)

func main() {
	n := flag.Int64("n", 512, "matrix dimension")
	iters := flag.Int("iters", 100, "power iterations")
	gpus := flag.Int("gpus", 3, "simulated GPUs")
	flag.Parse()

	m := machine.Summit((*gpus + 5) / 6)
	rt := legion.NewRuntime(m, m.Select(machine.GPU, *gpus))
	defer rt.Shutdown()

	// A = 0.5*(R + Rᵀ) + n*I  — random PSD matrix.
	r := core.Random(rt, *n, *n, 0.05, 42)
	sym := core.Add(r, r.Transpose(), 0.5, 0.5)
	a := core.Add(sym, core.Eye(rt, *n), 1, float64(*n))
	fmt.Printf("A: %v\n", a)

	// Power iteration: x = A@x; x /= ||x||.
	x := cunumeric.Random(rt, *n, 7)
	y := cunumeric.Zeros(rt, *n)
	for i := 0; i < *iters; i++ {
		a.SpMVInto(y, x)
		y.Scale(1 / cunumeric.Norm(y))
		x, y = y, x
	}
	a.SpMVInto(y, x)
	lambda := cunumeric.Dot(x, y).Get()
	rt.Fence()

	fmt.Printf("estimated max eigenvalue: %.6f\n", lambda)
	fmt.Printf("simulated time: %v on %d GPUs\n", rt.SimTime(), *gpus)
	fmt.Printf("runtime stats: %v\n", rt.Stats())
}
