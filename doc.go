// Package repro is a from-scratch Go reproduction of "Legate Sparse:
// Distributed Sparse Computing in Python" (Yadav et al., SC '23):
// a distributed SciPy-Sparse-style library built on a Legion-like
// task-based runtime, composing with a cuNumeric-like dense array
// library through constraint-based partitioning, DISTAL-style generated
// kernels, and a composable mapper — all executing on a simulated
// heterogeneous machine so the paper's weak-scaling evaluation can be
// regenerated without a supercomputer.
//
// See DESIGN.md for the system inventory and the substitutions made for
// unavailable hardware, ARCHITECTURE.md for the package map and the
// life-of-a-launch data flow, EXPERIMENTS.md for the paper-vs-measured
// record of every figure and table, and the examples/ directory for
// runnable programs. The top-level benchmarks (bench_test.go)
// regenerate each of the paper's figures at test scale:
//
//	go test -bench=. -benchmem .
//
// # Package tree
//
// Foundation:
//
//	internal/geometry    index-space algebra: rects, interval sets, tilings
//	internal/machine     synthetic Summit-like machine and cost model
//	internal/seq         sequential host reference kernels (the test oracle)
//
// Runtime:
//
//	internal/legion      Legion-model runtime: regions, partitions, launch
//	                     stream, dependence analysis, fusion, mapper,
//	                     checkpoint/replay, partition caches
//	internal/constraint  constraint-based parallelization (§4.1)
//	internal/fault       deterministic seeded fault injection
//	internal/prof        observability: sink, traces, critical paths
//
// Compiler:
//
//	internal/distal      DISTAL-style kernel generation; the plan registry
//	internal/tune        feedback-directed mapping: online autotuner
//	                     closing the prof → mapper/planner loop
//
// Libraries:
//
//	internal/core        Legate Sparse: SciPy-style sparse matrices as
//	                     region packs (CSR/CSC/COO/DIA/BSR), fingerprints
//	internal/cunumeric   cuNumeric-style distributed dense arrays
//
// Applications:
//
//	internal/solvers     Krylov solvers, multigrid, power iteration
//	internal/mlearn      matrix-factorization workload (§6.2)
//	internal/quantum     Rydberg-chain quantum simulation (§6.1)
//	internal/petsc       explicitly-parallel rank-local baseline
//
// Services and tools:
//
//	internal/serve/engine    the legate-serve solver engine: typed
//	                         request/response API, warm runtime pool,
//	                         admission control (wire-format agnostic)
//	internal/serve/httpapi   the HTTP JSON transport over any Backend
//	internal/serve/loopback  the in-process deep-copy transport
//	internal/shard           multi-shard scatter/gather execution plane:
//	                         nnz-balanced row blocks, consistent-hash
//	                         placement, bit-identical distributed CG
//	internal/bench           figure/table regeneration and load tests
//
// Commands:
//
//	cmd/legate-serve     HTTP solver service with warm runtime pool
//	                     (-shards runs the sharded execution plane)
//	cmd/legate-bench     paper experiments, ablations, load test
//	cmd/figures          EXPERIMENTS.md table generator
//	cmd/legate-prof      profiler artifact exporter
//	cmd/legate-info      machine/kernel/API inventory
//	cmd/solve            Matrix Market solver front end
package repro
