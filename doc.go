// Package repro is a from-scratch Go reproduction of "Legate Sparse:
// Distributed Sparse Computing in Python" (Yadav et al., SC '23):
// a distributed SciPy-Sparse-style library built on a Legion-like
// task-based runtime, composing with a cuNumeric-like dense array
// library through constraint-based partitioning, DISTAL-style generated
// kernels, and a composable mapper — all executing on a simulated
// heterogeneous machine so the paper's weak-scaling evaluation can be
// regenerated without a supercomputer.
//
// See DESIGN.md for the system inventory and the substitutions made for
// unavailable hardware, EXPERIMENTS.md for the paper-vs-measured record
// of every figure and table, and the examples/ directory for runnable
// programs. The top-level benchmarks (bench_test.go) regenerate each of
// the paper's figures at test scale:
//
//	go test -bench=. -benchmem .
package repro
